/// \file bench_relational_pipeline.cc
/// \brief §3.4: end-to-end pipelines mixing relational pre/post-processing
/// with graph algorithms — selection → algorithm → aggregation, PageRank
/// histograms, and metadata joins ("end-to-end data processing, starting
/// from raw data and right up to deriving meaningful insights").
///
/// Every case sweeps the executor `threads` knob (1 vs. hardware) through
/// ScopedExecThreads, so the §2.3 "parallel workers" claim is exercised on
/// the relational operator pipelines themselves: joins, aggregates, and
/// filters here run on the morsel-parallel executor (exec/parallel.h), and
/// independent pipeline nodes run as parallel DAG waves.

#include <optional>
#include <thread>

#include "bench_common.h"

#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "common/random.h"
#include "common/timer.h"
#include "exec/frontier.h"
#include "exec/kernel_stats.h"
#include "exec/parallel.h"
#include "exec/scan.h"
#include "exec/vectorized.h"
#include "graphgen/metadata.h"
#include "pipeline/dataflow.h"
#include "pipeline/nodes.h"
#include "sqlgraph/sql_common.h"

namespace vertexica {
namespace bench {
namespace {

FigureTable& Table34() {
  static FigureTable table("Sec 3.4: relational pipelines");
  return table;
}

int HardwareThreads() {
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

std::string ThreadsColumn(int threads) {
  return "T" + std::to_string(threads);
}

const Table& TwitterEdgesWithMetadata() {
  static const Table edges =
      GenerateEdgeMetadata(GetDataset(DatasetId::kTwitter), 4242);
  return edges;
}

/// Runs `build(pipeline)`→Run(target) under `threads` and records one cell.
template <typename BuildFn>
void RunPipelineCase(benchmark::State& state, const std::string& row,
                     const BuildFn& build) {
  const int threads = static_cast<int>(state.range(0));
  double seconds = 0;
  for (auto _ : state) {
    ScopedExecThreads scoped(threads);
    WallTimer timer;
    Pipeline p;
    const int target = build(&p);
    auto out = p.Run(target);
    VX_CHECK(out.ok()) << out.status().ToString();
    benchmark::DoNotOptimize(out->num_rows());
    seconds = timer.ElapsedSeconds();
    state.SetIterationTime(seconds);
  }
  Table34().Record(row, ThreadsColumn(threads), seconds);
}

void BM_SelectThenPageRankThenAggregate(benchmark::State& state) {
  const Table& edges = TwitterEdgesWithMetadata();
  RunPipelineCase(state, "Select>PR>Agg", [&edges](Pipeline* p) {
    const int src = p->AddNode(MakeSourceNode("edges", edges));
    const int family = p->AddNode(
        MakeSelectionNode(Eq(Col("type"), Lit(std::string("family")))),
        {src});
    const int pr = p->AddNode(MakePageRankNode(5), {family});
    return p->AddNode(
        MakeAggregationNode({}, {{AggOp::kMax, "rank", "max_rank"},
                                 {AggOp::kAvg, "rank", "avg_rank"},
                                 {AggOp::kCountStar, "", "nodes"}}),
        {pr});
  });
}
BENCHMARK(BM_SelectThenPageRankThenAggregate)->Arg(1)->Arg(0)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_PageRankHistogram(benchmark::State& state) {
  const Table& edges = TwitterEdgesWithMetadata();
  RunPipelineCase(state, "PR histogram", [&edges](Pipeline* p) {
    const int src = p->AddNode(MakeSourceNode("edges", edges));
    const int pr = p->AddNode(MakePageRankNode(5), {src});
    return p->AddNode(MakeHistogramNode("rank", 20), {pr});
  });
}
BENCHMARK(BM_PageRankHistogram)->Arg(1)->Arg(0)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_MetadataJoinAggregate(benchmark::State& state) {
  const Graph& g = GetDataset(DatasetId::kTwitter);
  const Table& edges = TwitterEdgesWithMetadata();
  static const Table metadata = GenerateNodeMetadata(g.num_vertices, 4243);
  RunPipelineCase(state, "PR join meta", [&edges](Pipeline* p) {
    const int src = p->AddNode(MakeSourceNode("edges", edges));
    const int pr = p->AddNode(MakePageRankNode(5), {src});
    const int meta = p->AddNode(MakeSourceNode("metadata", metadata));
    const int joined = p->AddNode(MakeJoinNode({"id"}, {"id"}), {pr, meta});
    // Average rank per value of the low-cardinality attribute u0.
    return p->AddNode(
        MakeAggregationNode({"u0"}, {{AggOp::kAvg, "rank", "avg_rank"}}),
        {joined});
  });
}
BENCHMARK(BM_MetadataJoinAggregate)->Arg(1)->Arg(0)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_TimestampWindowAnalysis(benchmark::State& state) {
  // "last one year" style temporal filter on the edge creation timestamp,
  // then triangle counting on the recent subgraph.
  const Table& edges = TwitterEdgesWithMetadata();
  constexpr int64_t kNow = 1700000000;
  constexpr int64_t kYear = 365LL * 24 * 3600;
  RunPipelineCase(state, "LastYear tri", [&edges](Pipeline* p) {
    const int src = p->AddNode(MakeSourceNode("edges", edges));
    const int recent = p->AddNode(
        MakeSelectionNode(Ge(Col("created"), Lit(kNow - kYear))), {src});
    return p->AddNode(MakeTriangleCountingNode(), {recent});
  });
}
BENCHMARK(BM_TimestampWindowAnalysis)->Arg(1)->Arg(0)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

// ---- Zone-map scan pruning (storage/encoding.h) ------------------------
//
// A selective comparison over a block-sorted column: with zone maps +
// encoding the morsel driver proves most morsels empty and never touches
// (or decodes) them; without, every row is scanned. Rows are bit-identical
// either way — the win is wall-clock and rows touched.

std::shared_ptr<const Table> ZoneScanTable(bool with_zone_maps) {
  auto make = [](bool encode) {
    constexpr int64_t kRows = 4 * 1000 * 1000;
    std::vector<int64_t> ts(static_cast<size_t>(kRows));
    std::vector<double> payload(static_cast<size_t>(kRows));
    Rng rng(7);
    for (int64_t i = 0; i < kRows; ++i) {
      ts[static_cast<size_t>(i)] = i / 1000;  // block-sorted timestamps
      payload[static_cast<size_t>(i)] = rng.NextDouble();
    }
    auto made = Table::Make(
        Schema({{"ts", DataType::kInt64}, {"payload", DataType::kDouble}}),
        {Column::FromInts(std::move(ts)),
         Column::FromDoubles(std::move(payload))});
    VX_CHECK(made.ok());
    Table table = std::move(made).MoveValueUnsafe();
    if (encode) table.EncodeColumns(EncodingMode::kForce);
    return std::make_shared<const Table>(std::move(table));
  };
  static const auto plain = make(false);
  static const auto encoded = make(true);
  return with_zone_maps ? encoded : plain;
}

void BM_ZoneMapPrunedScan(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const bool zone_maps = state.range(1) != 0;
  const auto table = ZoneScanTable(zone_maps);
  // ~0.1% selective: one 4000-row block out of 4M rows.
  const ExprPtr pred = And(Ge(Col("ts"), Lit(int64_t{2000})),
                           Lt(Col("ts"), Lit(int64_t{2004})));
  double seconds = 0;
  int64_t rows = 0;
  ResetScanPruneStats();
  for (auto _ : state) {
    WallTimer timer;
    ScopedExecThreads scoped(threads);
    auto out = ParallelFilter(table, pred);
    VX_CHECK(out.ok()) << out.status().ToString();
    rows = out->num_rows();
    benchmark::DoNotOptimize(rows);
    seconds = timer.ElapsedSeconds();
    state.SetIterationTime(seconds);
  }
  VX_CHECK(rows == 4000) << "selective scan returned " << rows;
  const ScanPruneStats stats = ScanPruneStatsSnapshot();
  state.counters["rows_pruned"] =
      static_cast<double>(stats.rows_pruned);
  Table34().Record(zone_maps ? "ZoneScan on" : "ZoneScan off",
                   ThreadsColumn(threads), seconds);
}
BENCHMARK(BM_ZoneMapPrunedScan)
    ->Args({1, 0})->Args({1, 1})->Args({0, 0})->Args({0, 1})
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

// ---- Fused selection-vector σ→π (exec/vectorized.h) --------------------
//
// The selection-vector execution core, on vs off: a selective fully-
// pushable predicate over a wide 8-column table feeding a narrow
// ref+literal projection. The interpreter path materializes a mask column
// and every survivor column per morsel; the fused path narrows a selection
// vector in typed loops and gathers only the projected columns once, at
// the pipeline's end. Rows are bit-identical either way (VX_CHECKed); the
// structural win is the bytes_materialized counter, reported per cell.

std::shared_ptr<const Table> WideSigmaPiTable() {
  static const auto table = [] {
    const int64_t rows = std::max<int64_t>(
        200 * 1000, static_cast<int64_t>(4 * 1000 * 1000 * Scale()));
    std::vector<int64_t> k(static_cast<size_t>(rows));
    std::vector<int64_t> v(static_cast<size_t>(rows));
    Rng rng(11);
    for (int64_t i = 0; i < rows; ++i) {
      k[static_cast<size_t>(i)] = static_cast<int64_t>(rng.Uniform(1000));
      v[static_cast<size_t>(i)] = i;
    }
    Schema schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}});
    std::vector<Column> cols = {Column::FromInts(std::move(k)),
                                Column::FromInts(std::move(v))};
    for (int p = 0; p < 6; ++p) {
      std::vector<double> payload(static_cast<size_t>(rows));
      for (auto& x : payload) x = rng.NextDouble();
      schema.AddField({"p" + std::to_string(p), DataType::kDouble});
      cols.push_back(Column::FromDoubles(std::move(payload)));
    }
    auto made = Table::Make(schema, std::move(cols));
    VX_CHECK(made.ok()) << made.status().ToString();
    return std::make_shared<const Table>(std::move(made).MoveValueUnsafe());
  }();
  return table;
}

void BM_FusedFilterProject(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const bool fused = state.range(1) != 0;
  const auto table = WideSigmaPiTable();
  // ~5% selective, two pushable conjuncts (select + one refine pass).
  const ExprPtr pred = And(Ge(Col("k"), Lit(int64_t{900})),
                           Lt(Col("k"), Lit(int64_t{950})));
  const std::vector<ProjectionSpec> proj = {
      {"v", Col("v")}, {"p0", Col("p0")}, {"tag", Lit(int64_t{1})}};
  static std::optional<Table> expected;  // parity across all four cells
  double seconds = 0;
  KernelStats stats;
  for (auto _ : state) {
    ScopedExecThreads scoped(threads);
    ScopedVectorized vec(fused);
    ScopedKernelStats stats_scope(&stats);
    WallTimer timer;
    auto out = ParallelFilterProject(table, pred, proj);
    VX_CHECK(out.ok()) << out.status().ToString();
    benchmark::DoNotOptimize(out->num_rows());
    seconds = timer.ElapsedSeconds();
    state.SetIterationTime(seconds);
    // Knob parity: the fused path is a pure physical-plan swap (the CI
    // bench smoke job trips on a divergence).
    if (!expected) {
      expected = std::move(*out);
    } else {
      VX_CHECK(out->Equals(*expected)) << "fused σ→π diverged";
    }
  }
  const KernelStatsSnapshot snap = Snapshot(stats);
  state.counters["bytes_materialized"] =
      static_cast<double>(snap.bytes_materialized);
  VX_CHECK(fused ? snap.fused_batches > 0 : snap.legacy_batches > 0);
  Table34().Record(fused ? "FusedSigmaPi on" : "FusedSigmaPi off",
                   ThreadsColumn(threads), seconds);
}
BENCHMARK(BM_FusedFilterProject)
    ->Args({1, 0})->Args({1, 1})->Args({0, 0})->Args({0, 1})
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

// ---- Order-aware superstep joins (exec/merge_join.h) -------------------
//
// The §2.3 3-way-join input build, merge vs hash: with the sorted
// invariants (vertex by id, message by dst, edges by (src, dst)) the
// vertex ⟕ message ⟕ edge joins read the sorted/RLE representation
// directly — zero hash builds per superstep. Rows are bit-identical
// either way; the reported time is the join-kernel time summed over the
// run (SuperstepStats::join_seconds), so the cell is exactly the
// superstep join cost the path removes.

void BM_SuperstepJoinPath(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const bool merge = state.range(1) != 0;
  const Graph& g = GetDataset(DatasetId::kTwitter);
  VertexicaOptions opts;
  opts.use_union_input = false;
  opts.use_merge_join = merge;
  // Always update in place so the only joins counted are the two input
  // builds per superstep (the replace-path rebuild adds an anti join with
  // an unsorted build side, which hashes by design).
  opts.update_threshold = 2.0;
  static int64_t expected_join_rows = -1;  // parity across all four cells
  double seconds = 0;
  for (auto _ : state) {
    ScopedExecThreads scoped(threads);
    Catalog catalog;
    RunStats stats;
    auto ranks = RunPageRank(&catalog, g, 5, 0.85, opts, &stats);
    VX_CHECK(ranks.ok()) << ranks.status().ToString();
    double join_seconds = 0;
    int64_t join_rows = 0;
    int64_t merge_joins = 0;
    int64_t hash_joins = 0;
    for (const auto& s : stats.supersteps) {
      join_seconds += s.join_seconds;
      join_rows += s.join_rows;
      merge_joins += s.merge_joins;
      hash_joins += s.hash_joins;
    }
    // Path + parity sanity (this is what the CI bench smoke job trips
    // on): the requested path actually ran, and both paths join the same
    // number of rows at any thread count.
    VX_CHECK(merge ? (merge_joins > 0 && hash_joins == 0)
                   : (hash_joins > 0 && merge_joins == 0));
    if (expected_join_rows < 0) expected_join_rows = join_rows;
    VX_CHECK(join_rows == expected_join_rows)
        << join_rows << " vs " << expected_join_rows;
    seconds = join_seconds;
    state.SetIterationTime(seconds);
  }
  Table34().Record(merge ? "StepJoin merge" : "StepJoin hash",
                   ThreadsColumn(threads), seconds);
}
BENCHMARK(BM_SuperstepJoinPath)
    ->Args({1, 0})->Args({1, 1})->Args({0, 0})->Args({0, 1})
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

// ---- Persistent sharding (storage/partition.h) -------------------------
//
// The sharded superstep dataflow vs. the unsharded one, end to end on
// PageRank: vertex/edge tables partitioned once per run and kept resident,
// per-shard dataflow run shard-wise in parallel, only cross-shard messages
// exchanged between supersteps. Results are bit-identical (VX_CHECKed);
// the recorded time is the coordinator's end-to-end run wall-clock
// (RunStats::total_seconds), which includes the sharded path's one-time
// partitioning — the fair counterpart of the per-superstep partitioning
// the unsharded loop pays inside its supersteps.

void BM_ShardedSuperstep(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int shards = static_cast<int>(state.range(1));
  const Graph& g = GetDataset(DatasetId::kTwitter);
  VertexicaOptions opts;
  opts.use_union_input = false;
  opts.num_shards = shards;
  static std::vector<double> expected;  // parity across all cells
  double seconds = 0;
  for (auto _ : state) {
    ScopedExecThreads scoped(threads);
    Catalog catalog;
    RunStats stats;
    auto ranks = RunPageRank(&catalog, g, 5, 0.85, opts, &stats);
    VX_CHECK(ranks.ok()) << ranks.status().ToString();
    if (expected.empty()) expected = *ranks;
    // Sharded and unsharded cells must agree bit-for-bit (the CI bench
    // smoke job trips on a divergence).
    VX_CHECK(*ranks == expected) << "sharded PageRank diverged";
    seconds = stats.total_seconds;
    state.SetIterationTime(seconds);
  }
  Table34().Record(shards > 1 ? "Sharded x" + std::to_string(shards)
                              : "Sharded off",
                   ThreadsColumn(threads), seconds);
}
BENCHMARK(BM_ShardedSuperstep)
    ->Args({1, 1})->Args({1, 4})->Args({0, 1})->Args({0, 4})
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

// ---- Active-vertex frontier supersteps (exec/frontier.h) ---------------
//
// SSSP on a long-tail graph: an RMAT core with a long chain hanging off
// the source's component. Once the core converges the distance wave crawls
// down the chain one vertex per superstep, so the dense path assembles a
// full V+E+M worker input for supersteps that touch one or two vertices.
// The frontier path gathers only the active rows through the halted/
// receiver bitvector and the cached CSR edge slices. Distances are
// VX_CHECKed bit-identical across all cells; the recorded time is the
// summed superstep seconds (SuperstepStats::seconds), i.e. exactly the
// dataflow cost the frontier removes.

const Graph& LongTailGraph() {
  static const Graph graph = [] {
    const int64_t core_v =
        std::max<int64_t>(500, static_cast<int64_t>(20000 * Scale()));
    Graph g = GenerateRmat(core_v, 6 * core_v, 777);
    // Chain tail hanging off the SSSP source (vertex 0): the sparse-regime
    // long tail. Its length bounds the superstep count.
    const int64_t tail =
        std::max<int64_t>(60, static_cast<int64_t>(1200 * Scale()));
    int64_t prev = 0;
    for (int64_t i = 0; i < tail; ++i) {
      const int64_t v = g.num_vertices++;
      g.AddEdge(prev, v);
      prev = v;
    }
    return g;
  }();
  return graph;
}

void BM_FrontierSuperstep(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const bool frontier = state.range(1) != 0;
  const Graph& g = LongTailGraph();
  VertexicaOptions opts;  // default union-input path
  opts.max_supersteps =
      static_cast<int>(g.num_vertices);  // the tail needs one step per hop
  static std::vector<double> expected;  // parity across all four cells
  double seconds = 0;
  for (auto _ : state) {
    ScopedExecThreads scoped(threads);
    ScopedFrontierMode mode(frontier ? FrontierMode::kOn : FrontierMode::kOff);
    Catalog catalog;
    RunStats stats;
    auto dist = RunShortestPaths(&catalog, g, 0, opts, &stats);
    VX_CHECK(dist.ok()) << dist.status().ToString();
    // Path + parity sanity (this is what the CI bench smoke job trips on):
    // the requested path actually ran — under `on` every superstep after
    // the first goes sparse — and distances agree bit-for-bit.
    VX_CHECK(frontier ? (stats.frontier_supersteps > 0 &&
                         stats.dense_supersteps == 1)
                      : stats.frontier_supersteps == 0)
        << stats.frontier_supersteps << " frontier / "
        << stats.dense_supersteps << " dense supersteps";
    if (expected.empty()) expected = *dist;
    VX_CHECK(*dist == expected) << "frontier SSSP diverged";
    double superstep_seconds = 0;
    for (const auto& s : stats.supersteps) superstep_seconds += s.seconds;
    seconds = superstep_seconds;
    state.SetIterationTime(seconds);
  }
  Table34().Record(frontier ? "Frontier on" : "Frontier off",
                   ThreadsColumn(threads), seconds);
}
BENCHMARK(BM_FrontierSuperstep)
    ->Args({1, 0})->Args({1, 1})->Args({0, 0})->Args({0, 1})
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

void PrintSpeedups() {
  std::printf("Speedup vs 1 thread (T0 = %d hardware threads):\n",
              HardwareThreads());
  for (const char* row :
       {"Select>PR>Agg", "PR histogram", "PR join meta", "LastYear tri"}) {
    const double serial = Table34().Lookup(row, ThreadsColumn(1));
    const double parallel = Table34().Lookup(row, ThreadsColumn(0));
    if (serial > 0 && parallel > 0) {
      std::printf("  %-14s %.2fx\n", row, serial / parallel);
    }
  }
  const double scan_off = Table34().Lookup("ZoneScan off", ThreadsColumn(0));
  const double scan_on = Table34().Lookup("ZoneScan on", ThreadsColumn(0));
  if (scan_off > 0 && scan_on > 0) {
    std::printf("Zone-map pruning speedup on the selective scan: %.2fx\n",
                scan_off / scan_on);
  }
  for (int threads : {1, 0}) {
    const double interp = Table34().Lookup("FusedSigmaPi off",
                                           ThreadsColumn(threads));
    const double fused = Table34().Lookup("FusedSigmaPi on",
                                          ThreadsColumn(threads));
    if (interp > 0 && fused > 0) {
      std::printf(
          "Fused sigma->pi speedup vs interpreter (T%d): %.2fx\n", threads,
          interp / fused);
    }
  }
  for (int threads : {1, 0}) {
    const double hash = Table34().Lookup("StepJoin hash",
                                         ThreadsColumn(threads));
    const double merge = Table34().Lookup("StepJoin merge",
                                          ThreadsColumn(threads));
    if (hash > 0 && merge > 0) {
      std::printf(
          "Superstep join speedup, merge vs hash (T%d): %.2fx\n", threads,
          hash / merge);
    }
  }
  for (int threads : {1, 0}) {
    const double dense = Table34().Lookup("Frontier off",
                                          ThreadsColumn(threads));
    const double sparse = Table34().Lookup("Frontier on",
                                           ThreadsColumn(threads));
    if (dense > 0 && sparse > 0) {
      std::printf(
          "Long-tail SSSP superstep speedup, frontier vs dense (T%d): "
          "%.2fx\n",
          threads, dense / sparse);
    }
  }
  for (int threads : {1, 0}) {
    const double unsharded = Table34().Lookup("Sharded off",
                                              ThreadsColumn(threads));
    const double sharded = Table34().Lookup("Sharded x4",
                                            ThreadsColumn(threads));
    if (unsharded > 0 && sharded > 0) {
      std::printf(
          "Superstep speedup, 4 resident shards vs unsharded (T%d): "
          "%.2fx\n",
          threads, unsharded / sharded);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace vertexica

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::vertexica::bench::Table34().Print();
  ::vertexica::bench::PrintSpeedups();
  ::vertexica::bench::Table34().WriteJson("BENCH_relational_pipeline.json");
  return 0;
}
