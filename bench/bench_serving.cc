/// \file bench_serving.cc
/// \brief Serving latency under concurrency: N client threads issue a mixed
/// PageRank / SSSP / relational-pipeline workload against one EngineServer
/// and we report end-to-end latency and admission queue-wait percentiles.
///
/// The mix covers all four backends; the Vertexica(SQL) requests are the
/// "relational pipeline" clients — that backend executes the algorithms as
/// plain join/aggregate operator pipelines on the morsel-parallel executor.
/// Every concurrent result is checked bit-identical against a serial
/// reference pass on the same server, so the numbers below are only ever
/// produced by correct runs (the determinism contract from
/// tests/server_test.cc, re-asserted at bench scale).
///
/// Timing semantics: graph install + backend Prepare happen outside the
/// measured window (PrepareGraph keeps the one-time load out of serving
/// latency, as a warm server would); measured seconds are wall-clock from
/// request submission to result, i.e. queue wait + run time.

#include <algorithm>
#include <cstddef>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"

#include "common/fault_injection.h"
#include "common/timer.h"
#include "server/engine_server.h"

namespace vertexica {
namespace bench {
namespace {

constexpr int kPageRankIterations = 5;
constexpr double kDamping = 0.85;
constexpr int kRequestsPerClient = 2;

FigureTable& TableServing() {
  static FigureTable table("Serving: concurrent mixed clients");
  return table;
}

/// The backend × algorithm mix each client cycles through, staggered by
/// client id so simultaneously in-flight requests differ.
std::vector<RunRequest> MixedWorkload() {
  const std::vector<std::pair<const char*, const char*>> mix = {
      {kVertexicaBackendId, kPageRank}, {kVertexicaBackendId, kSssp},
      {kSqlGraphBackendId, kPageRank},  {kSqlGraphBackendId, kSssp},
      {kGiraphBackendId, kSssp},        {kGraphDbBackendId, kPageRank},
  };
  std::vector<RunRequest> workload;
  workload.reserve(mix.size());
  for (const auto& [backend, algorithm] : mix) {
    RunRequest request = MakeFigureRequest(algorithm);
    request.backend = backend;
    request.iterations = kPageRankIterations;
    request.damping = kDamping;
    request.source = 0;
    workload.push_back(std::move(request));
  }
  return workload;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

std::string ClientsRow(int clients) {
  return std::to_string(clients) + (clients == 1 ? " client" : " clients");
}

/// One shared server per binary run: Prepare cost is paid once, and every
/// client-count case exercises the same warm caches a long-lived server
/// would have.
EngineServer& Server() {
  static EngineServer* server = [] {
    auto* s = new EngineServer();
    VX_CHECK_OK(s->CreateGraph("twitter", GetDatasetShared(DatasetId::kTwitter)));
    VX_CHECK_OK(s->PrepareGraph("twitter"));
    return s;
  }();
  return *server;
}

/// Serial reference values per workload index, computed once on the warm
/// server; concurrent runs must reproduce them bit-for-bit.
const std::vector<std::vector<double>>& SerialReference() {
  static const std::vector<std::vector<double>> reference = [] {
    std::vector<std::vector<double>> values;
    for (const RunRequest& request : MixedWorkload()) {
      auto result = Server().Run("twitter", request);
      VX_CHECK(result.ok()) << request.backend << ": "
                            << result.status().ToString();
      values.push_back(result->values);
    }
    return values;
  }();
  return reference;
}

void BM_ServingMixedClients(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  EngineServer& server = Server();
  const std::vector<RunRequest> workload = MixedWorkload();
  const std::vector<std::vector<double>>& reference = SerialReference();

  std::vector<double> latencies;
  std::vector<double> queue_waits;
  double wall_seconds = 0;
  for (auto _ : state) {
    latencies.clear();
    queue_waits.clear();
    std::mutex collect_mutex;
    WallTimer wall_timer;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c]() {
        for (int r = 0; r < kRequestsPerClient; ++r) {
          const std::size_t w =
              static_cast<std::size_t>(c + r) % workload.size();
          WallTimer timer;
          auto result = server.Run("twitter", workload[w]);
          const double latency = timer.ElapsedSeconds();
          VX_CHECK(result.ok()) << workload[w].backend << ": "
                                << result.status().ToString();
          // The determinism contract: a concurrent run is bit-identical to
          // the serial reference, whatever was in flight alongside it.
          VX_CHECK(result->values == reference[w])
              << workload[w].backend << "/" << workload[w].algorithm
              << " diverged from the serial reference under " << clients
              << " concurrent clients";
          std::lock_guard<std::mutex> lock(collect_mutex);
          latencies.push_back(latency);
          queue_waits.push_back(
              result->backend_metrics["server_queue_seconds"]);
        }
      });
    }
    for (auto& t : threads) t.join();
    wall_seconds = wall_timer.ElapsedSeconds();
    state.SetIterationTime(wall_seconds);
  }

  const std::string row = ClientsRow(clients);
  TableServing().Record(row, "latency p50", Percentile(latencies, 0.50));
  TableServing().Record(row, "latency p99", Percentile(latencies, 0.99));
  TableServing().Record(row, "queue-wait p50", Percentile(queue_waits, 0.50));
  TableServing().Record(row, "queue-wait p99", Percentile(queue_waits, 0.99));
  TableServing().Record(row, "wall", wall_seconds);
}
// 1 client is the serial baseline row; 8 concurrent mixed clients is the
// acceptance configuration; 4 sits between to show the queueing knee.
BENCHMARK(BM_ServingMixedClients)->Arg(1)->Arg(4)->Arg(8)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

/// Serving under a 10% deterministic transient-failure rate: every 10th
/// pass through the server.run fault point aborts, and the server's
/// bounded-backoff retry loop absorbs it. Reported: the latency the retry
/// tax costs at p50/p99, plus the retry and shed counters — all produced
/// only by runs that still match the serial reference bit-for-bit.
EngineServer& FaultServer() {
  static EngineServer* server = [] {
    // Dedicated server so the retry knob is explicit, and so arming the
    // fault can't perturb the clean-path rows above. A generous attempt
    // budget keeps the worst-case hit interleaving (every attempt of one
    // request landing on a multiple of the period) out of reach.
    ServerOptions options;
    options.max_run_attempts = 6;
    auto* s = new EngineServer(options);
    VX_CHECK_OK(s->CreateGraph("twitter", GetDatasetShared(DatasetId::kTwitter)));
    VX_CHECK_OK(s->PrepareGraph("twitter"));
    return s;
  }();
  return *server;
}

void BM_ServingTransientFaults(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  EngineServer& server = FaultServer();
  const std::vector<RunRequest> workload = MixedWorkload();
  // The reference comes from the *other* (clean) server: recovery must
  // reproduce not just a serial run, but any correct server's bits.
  const std::vector<std::vector<double>>& reference = SerialReference();

  std::vector<double> latencies;
  double wall_seconds = 0;
  uint64_t retries = 0;
  uint64_t shed = 0;
  for (auto _ : state) {
    latencies.clear();
    std::mutex collect_mutex;
    const uint64_t retries_before = server.retry_count();
    const uint64_t shed_before = server.admission_stats().shed;
    ArmFaultEvery("server.run", 10, FaultAction::kError);  // 10% failure rate
    WallTimer wall_timer;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c]() {
        for (int r = 0; r < kRequestsPerClient; ++r) {
          const std::size_t w =
              static_cast<std::size_t>(c + r) % workload.size();
          WallTimer timer;
          auto result = server.Run("twitter", workload[w]);
          const double latency = timer.ElapsedSeconds();
          VX_CHECK(result.ok())
              << workload[w].backend << " under injected faults: "
              << result.status().ToString();
          VX_CHECK(result->values == reference[w])
              << workload[w].backend << "/" << workload[w].algorithm
              << " diverged from the serial reference under injected faults";
          std::lock_guard<std::mutex> lock(collect_mutex);
          latencies.push_back(latency);
        }
      });
    }
    for (auto& t : threads) t.join();
    wall_seconds = wall_timer.ElapsedSeconds();
    DisarmAllFaults();
    retries = server.retry_count() - retries_before;
    shed = server.admission_stats().shed - shed_before;
    state.SetIterationTime(wall_seconds);
  }

  const std::string row = ClientsRow(clients) + ", 10% transient faults";
  TableServing().Record(row, "latency p50", Percentile(latencies, 0.50));
  TableServing().Record(row, "latency p99", Percentile(latencies, 0.99));
  TableServing().Record(row, "retries", static_cast<double>(retries));
  TableServing().Record(row, "shed", static_cast<double>(shed));
  TableServing().Record(row, "wall", wall_seconds);
}
BENCHMARK(BM_ServingTransientFaults)->Arg(8)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

void PrintAdmissionSummary() {
  const auto stats = Server().admission_stats();
  std::printf(
      "Admission: budget=%d admitted=%llu queued=%llu clamped=%llu "
      "max_in_use=%d queue-wait max=%.3fs\n",
      Server().admission_budget_threads(),
      static_cast<unsigned long long>(stats.admitted),
      static_cast<unsigned long long>(stats.queued),
      static_cast<unsigned long long>(stats.clamped), stats.max_in_use,
      stats.max_queue_seconds);
}

}  // namespace
}  // namespace bench
}  // namespace vertexica

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::vertexica::bench::TableServing().Print();
  ::vertexica::bench::PrintAdmissionSummary();
  ::vertexica::bench::TableServing().WriteJson("BENCH_serving.json");
  return 0;
}
