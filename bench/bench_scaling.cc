/// \file bench_scaling.cc
/// \brief Size-scaling sweep behind Figure 2's trend lines: PageRank
/// runtime of Vertexica (vertex-centric), Vertexica (SQL) and the Giraph
/// comparator's raw compute as the RMAT graph grows. Shows the shapes that
/// produce the paper's crossover: fixed costs dominate small graphs, bulk
/// throughput dominates large ones.

#include "bench_common.h"

#include "algorithms/pagerank.h"
#include "common/timer.h"
#include "giraph/bsp_engine.h"
#include "sqlgraph/sql_pagerank.h"

namespace vertexica {
namespace bench {
namespace {

constexpr int kIterations = 5;

FigureTable& TableScaling() {
  static FigureTable table("Scaling sweep: PageRank vs graph size");
  return table;
}

Graph SizedGraph(int64_t scale_index) {
  const int64_t n = 1000LL << scale_index;   // 1k, 4k, 16k, 64k vertices
  const int64_t m = 8000LL << scale_index;   // avg degree 8
  return GenerateRmat(n, m, 0xabc + static_cast<uint64_t>(scale_index));
}

std::string RowName(int64_t scale_index) {
  const int64_t n = 1000LL << scale_index;
  return std::to_string(n / 1000) + "k/" + std::to_string(n * 8 / 1000) +
         "k";
}

void BM_VertexicaScaling(benchmark::State& state) {
  const Graph g = SizedGraph(state.range(0));
  double seconds = 0;
  for (auto _ : state) {
    Catalog cat;
    RunStats stats;
    VX_CHECK(RunPageRank(&cat, g, kIterations, 0.85, {}, &stats).ok());
    seconds = stats.total_seconds;
    state.SetIterationTime(seconds);
  }
  TableScaling().Record(RowName(state.range(0)), "Vertexica", seconds);
}
BENCHMARK(BM_VertexicaScaling)->DenseRange(0, 6, 2)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_SqlScaling(benchmark::State& state) {
  const Graph g = SizedGraph(state.range(0));
  double seconds = 0;
  for (auto _ : state) {
    WallTimer timer;
    auto ranks = SqlPageRank(g, kIterations);
    VX_CHECK(ranks.ok());
    benchmark::DoNotOptimize(ranks->data());
    seconds = timer.ElapsedSeconds();
    state.SetIterationTime(seconds);
  }
  TableScaling().Record(RowName(state.range(0)), "Vertexica(SQL)", seconds);
}
BENCHMARK(BM_SqlScaling)->DenseRange(0, 6, 2)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_GiraphComputeScaling(benchmark::State& state) {
  const Graph g = SizedGraph(state.range(0));
  double seconds = 0;
  for (auto _ : state) {
    PageRankProgram program(kIterations);
    BspEngine engine(g, &program);  // raw compute: no modeled overheads
    GiraphStats stats;
    VX_CHECK_OK(engine.Run(&stats));
    seconds = stats.compute_seconds;
    state.SetIterationTime(seconds);
  }
  TableScaling().Record(RowName(state.range(0)), "BSP compute", seconds);
}
BENCHMARK(BM_GiraphComputeScaling)->DenseRange(0, 6, 2)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace vertexica

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::vertexica::bench::TableScaling().Print();
  return 0;
}
