/// \file bench_ablation_batching.cc
/// \brief §2.3 "Vertex Batching" ablation: partition-count sweep. One
/// partition per worker amortizes UDF invocation cost best; many tiny
/// partitions approach the "each vertex in a different worker" extreme the
/// paper warns against ("this leads to many UDF calls, which are
/// relatively expensive").

#include "bench_common.h"

#include "algorithms/pagerank.h"

namespace vertexica {
namespace bench {
namespace {

FigureTable& TableB() {
  static FigureTable table("Ablation (Sec 2.3): vertex batching");
  return table;
}

void BM_Partitions(benchmark::State& state) {
  const int partitions = static_cast<int>(state.range(0));
  const Graph& g = GetDataset(DatasetId::kTwitter);
  VertexicaOptions opts;
  opts.num_partitions = partitions;
  double seconds = 0;
  for (auto _ : state) {
    Catalog cat;
    RunStats stats;
    VX_CHECK(RunPageRank(&cat, g, 5, 0.85, opts, &stats).ok());
    seconds = stats.total_seconds;
    state.SetIterationTime(seconds);
  }
  TableB().Record("Twitter PR", std::to_string(partitions) + " parts",
                  seconds);
}
// 0 = one partition per worker (the default batching the paper lands on).
BENCHMARK(BM_Partitions)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->Arg(1024)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace vertexica

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::vertexica::bench::TableB().Print();
  return 0;
}
