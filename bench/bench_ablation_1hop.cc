/// \file bench_ablation_1hop.cc
/// \brief §3.2's central claim, quantified: 1-hop neighbourhood queries
/// (triangle counting) are a poor fit for the vertex-centric model because
/// the neighbourhood pairs must first be materialized as messages — a
/// quadratic blow-up — whereas SQL expresses them directly as joins.
/// Compares SqlTriangleCount against the vertex-centric
/// TriangleCountProgram on the same graphs.

#include "bench_common.h"

#include "algorithms/triangle_program.h"
#include "common/timer.h"
#include "sqlgraph/sql_common.h"
#include "sqlgraph/triangle_count.h"

namespace vertexica {
namespace bench {
namespace {

FigureTable& Table1h() {
  static FigureTable table(
      "Ablation (Sec 3.2): 1-hop query, SQL vs vertex-centric");
  return table;
}

// The vertex-centric variant generates Sum(deg^2) messages; keep the graph
// moderate so the bench finishes.
const Graph& OneHopGraph() {
  static const Graph g = GenerateRmat(
      std::max<int64_t>(512, static_cast<int64_t>(20000 * Scale() * 4)),
      std::max<int64_t>(2048, static_cast<int64_t>(120000 * Scale() * 4)),
      777);
  return g;
}

void BM_SqlTriangles(benchmark::State& state) {
  Table edges = MakeEdgeListTable(OneHopGraph());
  double seconds = 0;
  for (auto _ : state) {
    WallTimer timer;
    auto count = SqlTriangleCount(edges);
    VX_CHECK(count.ok()) << count.status().ToString();
    benchmark::DoNotOptimize(*count);
    seconds = timer.ElapsedSeconds();
    state.SetIterationTime(seconds);
  }
  Table1h().Record("RMAT", "SQL (3 joins)", seconds);
}
BENCHMARK(BM_SqlTriangles)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_VertexCentricTriangles(benchmark::State& state) {
  double seconds = 0;
  int64_t messages = 0;
  for (auto _ : state) {
    Catalog cat;
    RunStats stats;
    auto count = RunVertexCentricTriangleCount(&cat, OneHopGraph(), {},
                                               &stats);
    VX_CHECK(count.ok()) << count.status().ToString();
    benchmark::DoNotOptimize(*count);
    seconds = stats.total_seconds;
    messages = stats.total_messages;
    state.SetIterationTime(seconds);
  }
  state.counters["probe_messages"] = static_cast<double>(messages);
  Table1h().Record("RMAT", "vertex-centric", seconds);
}
BENCHMARK(BM_VertexCentricTriangles)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace vertexica

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::vertexica::bench::Table1h().Print();
  return 0;
}
