// Tests for CSV table import/export.

#include <gtest/gtest.h>

#include "storage/csv.h"

namespace vertexica {
namespace {

TEST(CsvTest, InfersTypes) {
  auto t = ParseCsv("id,score,name,flag\n1,0.5,alice,true\n2,1.5,bob,false\n");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->schema().field(0).type, DataType::kInt64);
  EXPECT_EQ(t->schema().field(1).type, DataType::kDouble);
  EXPECT_EQ(t->schema().field(2).type, DataType::kString);
  EXPECT_EQ(t->schema().field(3).type, DataType::kBool);
  EXPECT_EQ(t->num_rows(), 2);
  EXPECT_EQ(t->ColumnByName("id")->GetInt64(1), 2);
  EXPECT_TRUE(t->ColumnByName("flag")->GetBool(0));
}

TEST(CsvTest, IntColumnWithDecimalBecomesDouble) {
  auto t = ParseCsv("x\n1\n2.5\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().field(0).type, DataType::kDouble);
  EXPECT_DOUBLE_EQ(t->column(0).GetDouble(0), 1.0);
}

TEST(CsvTest, EmptyFieldsAreNull) {
  auto t = ParseCsv("a,b\n1,\n,2\n");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->column(1).IsNull(0));
  EXPECT_TRUE(t->column(0).IsNull(1));
  EXPECT_EQ(t->column(0).GetInt64(0), 1);
}

TEST(CsvTest, NoHeaderNamesColumns) {
  CsvOptions opts;
  opts.has_header = false;
  auto t = ParseCsv("1,2\n3,4\n", opts);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().field(0).name, "c0");
  EXPECT_EQ(t->schema().field(1).name, "c1");
  EXPECT_EQ(t->num_rows(), 2);
}

TEST(CsvTest, QuotedFieldsWithDelimiterAndEscapes) {
  auto t = ParseCsv("name,bio\nalice,\"likes, commas\"\nbob,\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->column(1).GetString(0), "likes, commas");
  EXPECT_EQ(t->column(1).GetString(1), "say \"hi\"");
}

TEST(CsvTest, RaggedRowFails) {
  EXPECT_TRUE(ParseCsv("a,b\n1,2,3\n").status().IsIoError());
}

TEST(CsvTest, SchemaOverrideValidates) {
  Schema schema({{"src", DataType::kInt64}, {"w", DataType::kDouble}});
  auto ok = ParseCsvWithSchema("src,w\n1,2\n", schema);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->schema().field(1).type, DataType::kDouble);
  EXPECT_DOUBLE_EQ(ok->column(1).GetDouble(0), 2.0);
  auto bad = ParseCsvWithSchema("src,w\nx,2\n", schema);
  EXPECT_TRUE(bad.status().IsTypeError());
  Schema narrow({{"src", DataType::kInt64}});
  EXPECT_TRUE(
      ParseCsvWithSchema("a,b\n1,2\n", narrow).status().IsInvalidArgument());
}

TEST(CsvTest, RoundTrip) {
  Table t(Schema({{"id", DataType::kInt64},
                  {"score", DataType::kDouble},
                  {"name", DataType::kString}}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value(1.5), Value("a,b")}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{2}), Value::Null(), Value("plain")}));
  const std::string csv = ToCsv(t);
  auto back = ParseCsv(csv);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_rows(), 2);
  EXPECT_EQ(back->column(2).GetString(0), "a,b");
  EXPECT_TRUE(back->column(1).IsNull(1));
  EXPECT_EQ(back->column(0).GetInt64(1), 2);
}

TEST(CsvTest, FileRoundTrip) {
  Table t(Schema({{"x", DataType::kInt64}}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{42})}));
  const std::string path = testing::TempDir() + "/vx_csv_roundtrip.csv";
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->column(0).GetInt64(0), 42);
  EXPECT_TRUE(ReadCsvFile("/nonexistent/x.csv").status().IsIoError());
}

TEST(CsvTest, CrLfLineEndings) {
  auto t = ParseCsv("a\r\n1\r\n2\r\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2);
  EXPECT_EQ(t->column(0).GetInt64(1), 2);
}

TEST(CsvTest, QuotedFieldSpansLines) {
  // A quoted field may contain record separators; splitting on newlines
  // before quote parsing turned this into a bogus field-count error.
  auto t = ParseCsv("id,bio\n1,\"line one\nline two\"\n2,short\n");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 2);
  EXPECT_EQ(t->column(1).GetString(0), "line one\nline two");
  EXPECT_EQ(t->column(1).GetString(1), "short");
  EXPECT_EQ(t->column(0).GetInt64(1), 2);
}

TEST(CsvTest, QuotedFieldWithEmbeddedCrLf) {
  auto t = ParseCsv("a,b\r\n1,\"x\r\ny\"\r\n");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->num_rows(), 1);
  // Inside quotes the bytes are literal; the record still ends at the
  // unquoted CRLF.
  EXPECT_EQ(t->column(1).GetString(0), "x\r\ny");
}

TEST(CsvTest, UnterminatedQuoteIsIoError) {
  auto bad = ParseCsv("a,b\n1,\"oops\n2,fine\n");
  ASSERT_TRUE(bad.status().IsIoError()) << bad.status().ToString();
  // The error points at the line the quote opened on.
  EXPECT_NE(bad.status().ToString().find("line 2"), std::string::npos)
      << bad.status().ToString();
}

TEST(CsvTest, StrayQuoteMidFieldIsIoError) {
  EXPECT_TRUE(ParseCsv("a\nx\"y\n").status().IsIoError());
  EXPECT_TRUE(ParseCsv("a\n\"x\"y\n").status().IsIoError());
}

TEST(CsvTest, RoundTripEmbeddedNewlinesAndQuotes) {
  Table t(Schema({{"id", DataType::kInt64}, {"text", DataType::kString}}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value("a\nb")}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{2}), Value("say \"hi\",\nok")}));
  auto back = ParseCsv(ToCsv(t));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_rows(), 2);
  EXPECT_EQ(back->column(1).GetString(0), "a\nb");
  EXPECT_EQ(back->column(1).GetString(1), "say \"hi\",\nok");
}

}  // namespace
}  // namespace vertexica
