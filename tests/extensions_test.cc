// Tests for the extension features: TopN operator, SQL random walk with
// restart (localized PageRank), column compression, the umbrella header,
// and additional coordinator edge cases (orphan messages, aggregator
// visibility, multi-graph catalogs).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "vertexica/vertexica.h"  // umbrella header must be self-contained

#include "algorithms/label_propagation.h"
#include "algorithms/reference.h"
#include "catalog/catalog_io.h"
#include "common/fault_injection.h"
#include "exec/frontier.h"
#include "exec/merge_join.h"
#include "giraph/bsp_engine.h"
#include "sqlgraph/sql_common.h"
#include "storage/compression.h"

namespace vertexica {
namespace {

// ------------------------------------------------------------------- TopN

Table Scores(int64_t n) {
  Table t(Schema({{"id", DataType::kInt64}, {"score", DataType::kDouble}}));
  // Deterministic scrambled scores.
  for (int64_t i = 0; i < n; ++i) {
    VX_CHECK_OK(t.AppendRow(
        {Value(i), Value(static_cast<double>((i * 37) % n))}));
  }
  return t;
}

TEST(TopNTest, MatchesSortLimit) {
  Table t = Scores(500);
  auto topn = PlanBuilder::Scan(t, /*batch_size=*/64)
                  .TopN({{"score", false}}, 10)
                  .Execute();
  auto sorted = PlanBuilder::Scan(t)
                    .OrderBy({{"score", false}})
                    .Limit(10)
                    .Execute();
  ASSERT_TRUE(topn.ok()) << topn.status().ToString();
  ASSERT_TRUE(sorted.ok());
  EXPECT_TRUE(topn->Equals(*sorted));
}

TEST(TopNTest, FewerRowsThanLimit) {
  Table t = Scores(3);
  auto topn = PlanBuilder::Scan(t).TopN({{"score", true}}, 10).Execute();
  ASSERT_TRUE(topn.ok());
  EXPECT_EQ(topn->num_rows(), 3);
  EXPECT_DOUBLE_EQ(topn->column(1).GetDouble(0), 0.0);
}

TEST(TopNTest, ZeroLimitEmpty) {
  auto topn = PlanBuilder::Scan(Scores(5)).TopN({{"score", true}}, 0).Execute();
  ASSERT_TRUE(topn.ok());
  EXPECT_EQ(topn->num_rows(), 0);
}

TEST(TopNTest, UnknownColumnFails) {
  auto topn = PlanBuilder::Scan(Scores(5)).TopN({{"nope", true}, }, 3).Execute();
  EXPECT_TRUE(topn.status().IsInvalidArgument());
}

TEST(TopNTest, StableTieBreaks) {
  Table t(Schema({{"id", DataType::kInt64}, {"k", DataType::kInt64}}));
  for (int64_t i = 0; i < 20; ++i) {
    VX_CHECK_OK(t.AppendRow({Value(i), Value(int64_t{7})}));
  }
  auto topn = PlanBuilder::Scan(t, 4).TopN({{"k", true}}, 5).Execute();
  ASSERT_TRUE(topn.ok());
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(topn->column(0).GetInt64(i), i);  // input order preserved
  }
}

// -------------------------------------------------------------- SQL RWR

TEST(SqlRandomWalkTest, MatchesVertexCentricEngine) {
  Graph g = GenerateRmat(120, 800, 61);
  Catalog cat;
  auto vx = RunRandomWalkWithRestart(&cat, g, /*source=*/3, 12, 0.15);
  ASSERT_TRUE(vx.ok());
  auto sql = SqlRandomWalkWithRestart(g, 3, 12, 0.15);
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  ASSERT_EQ(vx->size(), sql->size());
  for (size_t v = 0; v < vx->size(); ++v) {
    EXPECT_NEAR((*sql)[v], (*vx)[v], 1e-9) << "vertex " << v;
  }
}

TEST(SqlRandomWalkTest, MatchesBspEngine) {
  Graph g = GenerateRmat(100, 700, 62);
  RandomWalkWithRestartProgram program(5, 10, 0.2);
  BspEngine engine(g, &program);
  ASSERT_TRUE(engine.Run().ok());
  auto sql = SqlRandomWalkWithRestart(g, 5, 10, 0.2);
  ASSERT_TRUE(sql.ok());
  for (int64_t v = 0; v < g.num_vertices; ++v) {
    EXPECT_NEAR((*sql)[static_cast<size_t>(v)], engine.value(v), 1e-9);
  }
}

TEST(SqlRandomWalkTest, SourceKeepsRestartMass) {
  Graph g = GenerateRmat(64, 400, 63);
  auto sql = SqlRandomWalkWithRestart(g, 0, 15, 0.3);
  ASSERT_TRUE(sql.ok());
  EXPECT_GE((*sql)[0], 0.3 * 0.9);
}

// --------------------------------------------------------- Compression

TEST(CompressionTest, RleRoundTrip) {
  std::vector<int64_t> values = {1, 1, 1, 2, 3, 3, 1};
  auto runs = RleEncode(values);
  ASSERT_EQ(runs.size(), 4u);
  EXPECT_EQ(runs[0].value, 1);
  EXPECT_EQ(runs[0].length, 3);
  EXPECT_EQ(RleDecode(runs), values);
  EXPECT_TRUE(RleEncode({}).empty());
}

TEST(CompressionTest, DictionaryRoundTrip) {
  std::vector<std::string> values = {"family", "friend", "family",
                                     "classmate", "family"};
  auto enc = DictionaryEncode(values);
  EXPECT_EQ(enc.dictionary.size(), 3u);
  EXPECT_EQ(enc.dictionary[0], "family");  // first-appearance order
  EXPECT_EQ(DictionaryDecode(enc), values);
}

TEST(CompressionTest, SortedIdsCompressWell) {
  // A sorted, deduplicated vertex-id column is the best case for RLE on
  // deltas; even plain RLE on a low-cardinality column shines.
  Column c(DataType::kInt64);
  for (int64_t i = 0; i < 10000; ++i) c.AppendInt64(i / 1000);  // 10 runs
  EXPECT_LT(CompressedByteSize(c), UncompressedByteSize(c) / 100);
}

TEST(CompressionTest, EdgeTypeColumnDictionaryRatio) {
  // The §4 metadata edge-type column has 3 distinct strings; dictionary
  // encoding beats raw storage comfortably.
  Graph g = GenerateErdosRenyi(100, 2000, 9);
  Table edges = GenerateEdgeMetadata(g, 10);
  const Column* type = edges.ColumnByName("type");
  ASSERT_NE(type, nullptr);
  EXPECT_LT(CompressedByteSize(*type), UncompressedByteSize(*type));
}

TEST(CompressionTest, RandomDoublesDontCompress) {
  Column c(DataType::kDouble);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) c.AppendDouble(rng.NextDouble());
  EXPECT_EQ(CompressedByteSize(c), UncompressedByteSize(c));
}

// ------------------------------------------- Coordinator edge cases

/// Program that mis-addresses messages to a nonexistent vertex.
class OrphanMessageProgram : public VertexProgram {
 public:
  int value_arity() const override { return 1; }
  int message_arity() const override { return 1; }
  void InitValue(int64_t, int64_t, double* v) const override { v[0] = 0; }
  void Compute(VertexContext* ctx) override {
    if (ctx->superstep() == 0) {
      ctx->SendMessage(999999, 1.0);  // no such vertex
      ctx->SendMessage(ctx->vertex_id(), 1.0);
    } else {
      ctx->ModifyVertexValue(static_cast<double>(ctx->num_messages()));
    }
    if (ctx->superstep() >= 1) ctx->VoteToHalt();
  }
};

TEST(CoordinatorEdgeCaseTest, OrphanMessagesAreDropped) {
  Graph g;
  g.num_vertices = 3;
  g.AddEdge(0, 1);
  OrphanMessageProgram program;
  Catalog cat;
  ASSERT_TRUE(RunVertexProgram(&cat, g, &program).ok());
  auto vals = ReadVertexValues(cat, {});
  ASSERT_TRUE(vals.ok());
  // Every vertex received exactly its own self-message.
  for (double v : *vals) EXPECT_DOUBLE_EQ(v, 1.0);
}

/// Program proving aggregator values are visible one superstep later.
class AggregatorEchoProgram : public VertexProgram {
 public:
  int value_arity() const override { return 1; }
  int message_arity() const override { return 1; }
  void InitValue(int64_t, int64_t, double* v) const override { v[0] = -1; }
  void Compute(VertexContext* ctx) override {
    if (ctx->superstep() == 0) {
      ctx->Aggregate("census", 1.0);
      ctx->SendMessage(ctx->vertex_id(), 0.0);  // keep self alive
    } else if (ctx->superstep() == 1) {
      // Superstep 1 must see superstep 0's total.
      ctx->ModifyVertexValue(ctx->GetAggregate("census"));
    }
    if (ctx->superstep() >= 1) ctx->VoteToHalt();
  }
  std::vector<AggregatorSpec> aggregators() const override {
    return {{"census", AggregatorKind::kSum}};
  }
};

TEST(CoordinatorEdgeCaseTest, AggregatorVisibleNextSuperstep) {
  Graph g;
  g.num_vertices = 7;
  AggregatorEchoProgram program;
  Catalog cat;
  ASSERT_TRUE(RunVertexProgram(&cat, g, &program).ok());
  auto vals = ReadVertexValues(cat, {});
  for (double v : *vals) EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(CoordinatorEdgeCaseTest, TwoGraphsCoexistViaPrefixes) {
  Graph g1 = GenerateRmat(50, 200, 71);
  Graph g2 = GenerateRmat(60, 300, 72);
  Catalog cat;
  PageRankProgram p1(4);
  PageRankProgram p2(4);
  auto names1 = GraphTableNames::WithPrefix("a_");
  auto names2 = GraphTableNames::WithPrefix("b_");
  ASSERT_TRUE(RunVertexProgram(&cat, g1, &p1, {}, names1).ok());
  ASSERT_TRUE(RunVertexProgram(&cat, g2, &p2, {}, names2).ok());
  EXPECT_TRUE(cat.HasTable("a_vertex"));
  EXPECT_TRUE(cat.HasTable("b_vertex"));
  EXPECT_EQ(*cat.RowCount("a_vertex"), 50);
  EXPECT_EQ(*cat.RowCount("b_vertex"), 60);
  auto r1 = ReadVertexValues(cat, names1);
  auto r2 = ReadVertexValues(cat, names2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  auto e1 = PageRankReference(g1, 4);
  for (size_t v = 0; v < e1.size(); ++v) {
    EXPECT_NEAR((*r1)[v], e1[v], 1e-9);
  }
}

// Scope-of-analysis via bounding rectangle (§4.1): using two float
// metadata attributes as layout coordinates, select nodes inside a
// rectangle and run analysis on the induced subgraph.
TEST(ScopeSelectionTest, BoundingRectangleInducedSubgraph) {
  Graph g = GenerateRmat(300, 2000, 73);
  Table meta = GenerateNodeMetadata(g.num_vertices, 74);
  // f0 in [0,1) serves as x, f1 in [0,10) as y.
  auto inside = PlanBuilder::Scan(meta)
                    .Filter(And(And(Ge(Col("f0"), Lit(0.2)),
                                    Le(Col("f0"), Lit(0.8))),
                                And(Ge(Col("f1"), Lit(2.0)),
                                    Le(Col("f1"), Lit(8.0)))))
                    .Select({"id"})
                    .Execute();
  ASSERT_TRUE(inside.ok());
  ASSERT_GT(inside->num_rows(), 0);
  ASSERT_LT(inside->num_rows(), g.num_vertices);

  // Induced subgraph: both endpoints inside the rectangle.
  Table edges = MakeEdgeListTable(g);
  auto induced =
      PlanBuilder::Scan(edges)
          .Join(PlanBuilder::Scan(*inside), {"src"}, {"id"}, JoinType::kSemi)
          .Join(PlanBuilder::Scan(*inside), {"dst"}, {"id"}, JoinType::kSemi)
          .Execute();
  ASSERT_TRUE(induced.ok());
  EXPECT_LT(induced->num_rows(), edges.num_rows());
  // The induced edge set feeds any SQL algorithm.
  auto tri = SqlTriangleCount(*induced);
  ASSERT_TRUE(tri.ok());
  EXPECT_GE(*tri, 0);
}

// ------------------------------------------------- Catalog persistence

TEST(CatalogIoTest, SaveAndRestoreRoundTrip) {
  Catalog catalog;
  Table people(Schema({{"id", DataType::kInt64},
                       {"score", DataType::kDouble},
                       {"name", DataType::kString},
                       {"flag", DataType::kBool}}));
  VX_CHECK_OK(people.AppendRow(
      {Value(int64_t{1}), Value(0.5), Value("a,b"), Value(true)}));
  VX_CHECK_OK(people.AppendRow(
      {Value(int64_t{2}), Value::Null(), Value("x"), Value(false)}));
  VX_CHECK_OK(catalog.CreateTable("people", people));
  Table empty(Schema({{"x", DataType::kInt64}}));
  VX_CHECK_OK(catalog.CreateTable("empty", empty));

  const std::string dir = testing::TempDir() + "/vx_catalog_ckpt";
  ASSERT_TRUE(SaveCatalog(catalog, dir).ok());

  Catalog restored;
  ASSERT_TRUE(LoadCatalog(dir, &restored).ok());
  auto back = restored.GetTable("people");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE((*back)->Equals(people));
  auto empty_back = restored.GetTable("empty");
  ASSERT_TRUE(empty_back.ok());
  EXPECT_EQ((*empty_back)->num_rows(), 0);
  EXPECT_EQ((*empty_back)->schema().field(0).type, DataType::kInt64);
}

TEST(CatalogIoTest, CheckpointRecoverResumesAnalysis) {
  // Checkpoint mid-workload: load a graph, checkpoint the catalog, destroy
  // it, recover, and run PageRank on the recovered tables.
  Graph g = GenerateRmat(80, 400, 81);
  PageRankProgram program(5);
  Catalog catalog;
  ASSERT_TRUE(LoadGraphTables(&catalog, g, program).ok());
  const std::string dir = testing::TempDir() + "/vx_catalog_resume";
  ASSERT_TRUE(SaveCatalog(catalog, dir).ok());

  Catalog recovered;
  ASSERT_TRUE(LoadCatalog(dir, &recovered).ok());
  Coordinator coordinator(&recovered, &program);
  ASSERT_TRUE(coordinator.Run().ok());
  auto ranks = ReadVertexValues(recovered, {});
  ASSERT_TRUE(ranks.ok());
  auto expect = PageRankReference(g, 5);
  for (size_t v = 0; v < expect.size(); ++v) {
    EXPECT_NEAR((*ranks)[v], expect[v], 1e-9);
  }
}

TEST(CatalogIoTest, MissingDirectoryFails) {
  Catalog catalog;
  EXPECT_TRUE(LoadCatalog("/nonexistent/vx", &catalog).IsIoError());
}

TEST(CheckpointTest, ResumedRunMatchesUninterrupted) {
  Graph g = GenerateRmat(60, 300, 91);
  // Uninterrupted baseline.
  Catalog full;
  auto expect = RunPageRank(&full, g, 8);
  ASSERT_TRUE(expect.ok());

  // Interrupted run: checkpoint every superstep, stop after 4.
  const std::string dir = testing::TempDir() + "/vx_ckpt_resume";
  PageRankProgram program(8);
  Catalog cat;
  ASSERT_TRUE(LoadGraphTables(&cat, g, program).ok());
  VertexicaOptions opts;
  opts.max_supersteps = 4;  // "crash" after superstep 3
  opts.checkpoint_every = 1;
  opts.checkpoint_dir = dir;
  Coordinator interrupted(&cat, &program, opts);
  ASSERT_TRUE(interrupted.Run().ok());

  // Recover into a fresh catalog and resume to completion.
  Catalog recovered;
  ASSERT_TRUE(LoadCatalog(dir, &recovered).ok());
  VertexicaOptions resume;
  resume.resume_from_checkpoint = true;
  PageRankProgram program2(8);
  Coordinator resumed(&recovered, &program2, resume);
  RunStats stats;
  ASSERT_TRUE(resumed.Run(&stats).ok());
  // Resumed run starts past superstep 0 (i.e. it did not restart).
  ASSERT_FALSE(stats.supersteps.empty());
  EXPECT_GE(stats.supersteps.front().superstep, 4);

  auto ranks = ReadVertexValues(recovered, {});
  ASSERT_TRUE(ranks.ok());
  for (size_t v = 0; v < expect->size(); ++v) {
    EXPECT_NEAR((*ranks)[v], (*expect)[v], 1e-9);
  }
}

TEST(CheckpointTest, ResumedJoinPathKeepsMergeJoins) {
  ScopedMergeJoin on(true);  // pin against a VERTEXICA_MERGE_JOIN=off env
  Graph g = GenerateRmat(60, 300, 93);
  const std::string dir = testing::TempDir() + "/vx_ckpt_merge";
  PageRankProgram program(8);
  Catalog cat;
  ASSERT_TRUE(LoadGraphTables(&cat, g, program).ok());
  VertexicaOptions opts;
  opts.use_union_input = false;
  opts.update_threshold = 2.0;  // in-place: the only joins are input builds
  opts.max_supersteps = 4;  // "crash" after superstep 3
  opts.checkpoint_every = 1;
  opts.checkpoint_dir = dir;
  Coordinator interrupted(&cat, &program, opts);
  ASSERT_TRUE(interrupted.Run().ok());

  // The restored tables carry rows but no sort-order declarations
  // (catalog_io persists none); the coordinator re-establishes the
  // invariants at run start, so a resumed run merges like a fresh one.
  Catalog recovered;
  ASSERT_TRUE(LoadCatalog(dir, &recovered).ok());
  VertexicaOptions resume = opts;
  resume.max_supersteps = 500;
  resume.checkpoint_every = 0;
  resume.resume_from_checkpoint = true;
  PageRankProgram program2(8);
  Coordinator resumed(&recovered, &program2, resume);
  RunStats stats;
  ASSERT_TRUE(resumed.Run(&stats).ok());
  ASSERT_FALSE(stats.supersteps.empty());
  EXPECT_GE(stats.supersteps.front().superstep, 4);
  for (const SuperstepStats& s : stats.supersteps) {
    EXPECT_EQ(s.merge_joins, 2) << "superstep " << s.superstep;
    EXPECT_EQ(s.hash_joins, 0) << "superstep " << s.superstep;
  }
}

TEST(CheckpointTest, NoResumeFlagRestartsFromZero) {
  Graph g = GenerateRmat(40, 160, 92);
  const std::string dir = testing::TempDir() + "/vx_ckpt_norestart";
  PageRankProgram program(5);
  Catalog cat;
  ASSERT_TRUE(LoadGraphTables(&cat, g, program).ok());
  VertexicaOptions opts;
  opts.max_supersteps = 2;
  opts.checkpoint_every = 1;
  opts.checkpoint_dir = dir;
  Coordinator c(&cat, &program, opts);
  ASSERT_TRUE(c.Run().ok());

  Catalog recovered;
  ASSERT_TRUE(LoadCatalog(dir, &recovered).ok());
  VertexicaOptions no_resume;  // default: start at superstep 0
  PageRankProgram program2(5);
  Coordinator again(&recovered, &program2, no_resume);
  RunStats stats;
  ASSERT_TRUE(again.Run(&stats).ok());
  ASSERT_FALSE(stats.supersteps.empty());
  EXPECT_EQ(stats.supersteps.front().superstep, 0);
}

TEST(CheckpointTest, ResumedFrontierRunMatchesDenseBaseline) {
  Graph g = GenerateRmat(80, 400, 94);
  AssignRandomWeights(&g, 1.0, 4.0, 95);
  // Dense uninterrupted baseline.
  Catalog full;
  std::vector<double> dense;
  {
    ScopedFrontierMode off(FrontierMode::kOff);
    auto r = RunShortestPaths(&full, g, 0);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    dense = *r;
  }

  // Frontier run, checkpointed and "crashed" after superstep 1, then
  // resumed with the frontier still forced on: the resumed coordinator
  // must re-derive the active set from the restored tables (RLE halted
  // column, restored-by-verification sort orders) and still land on the
  // dense answer bit for bit.
  ScopedFrontierMode on(FrontierMode::kOn);
  const std::string dir = testing::TempDir() + "/vx_ckpt_frontier";
  ShortestPathProgram program(0);
  Catalog cat;
  ASSERT_TRUE(LoadGraphTables(&cat, g, program).ok());
  VertexicaOptions opts;
  opts.use_union_input = false;
  opts.max_supersteps = 2;
  opts.checkpoint_every = 1;
  opts.checkpoint_dir = dir;
  Coordinator interrupted(&cat, &program, opts);
  ASSERT_TRUE(interrupted.Run().ok());

  Catalog recovered;
  ASSERT_TRUE(LoadCatalog(dir, &recovered).ok());
  VertexicaOptions resume = opts;
  resume.max_supersteps = 500;
  resume.checkpoint_every = 0;
  resume.resume_from_checkpoint = true;
  ShortestPathProgram program2(0);
  Coordinator resumed(&recovered, &program2, resume);
  RunStats stats;
  ASSERT_TRUE(resumed.Run(&stats).ok());
  ASSERT_FALSE(stats.supersteps.empty());
  EXPECT_GE(stats.supersteps.front().superstep, 2);
  EXPECT_GT(stats.frontier_supersteps, 0);

  auto dists = ReadVertexValues(recovered, {});
  ASSERT_TRUE(dists.ok());
  ASSERT_EQ(dists->size(), dense.size());
  for (size_t v = 0; v < dense.size(); ++v) {
    EXPECT_EQ((*dists)[v], dense[v]) << "vertex " << v;
  }
}

// ----------------------------------- Checkpoint v2: crash atomicity

namespace fs = std::filesystem;

/// Fills a fresh catalog with a table whose contents identify the
/// checkpoint they came from. (Catalog is pinned in place — not movable —
/// so the helpers take an out-param / save directly.)
void FillTagged(Catalog* catalog, int64_t tag) {
  Table t(Schema({{"id", DataType::kInt64}, {"tag", DataType::kInt64}}));
  for (int64_t i = 0; i < 8; ++i) {
    VX_CHECK_OK(t.AppendRow({Value(i), Value(tag)}));
  }
  VX_CHECK_OK(catalog->CreateTable("t", std::move(t)));
}

Status SaveTagged(int64_t tag, const std::string& dir) {
  Catalog catalog;
  FillTagged(&catalog, tag);
  return SaveCatalog(catalog, dir);
}

int64_t ReadTag(const Catalog& catalog) {
  auto t = catalog.GetTable("t");
  VX_CHECK_OK(t.status());
  return (*t)->column(1).GetInt64(0);
}

/// A fresh checkpoint root under the test temp dir.
std::string FreshCheckpointDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

std::string CurrentGeneration(const std::string& dir) {
  std::ifstream in(dir + "/CURRENT");
  std::string name;
  in >> name;
  return name;
}

std::vector<std::string> GenerationDirs(const std::string& dir) {
  std::vector<std::string> gens;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (entry.is_directory() && name.rfind("gen-", 0) == 0) {
      gens.push_back(name);
    }
  }
  std::sort(gens.begin(), gens.end());
  return gens;
}

/// Flips one byte of `path` in place (CRC damage without a size change).
void FlipByte(const std::string& path, std::streamoff offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(offset);
  char c = 0;
  f.get(c);
  f.seekp(offset);
  f.put(static_cast<char>(c ^ 0x20));
}

TEST(CatalogIoV2Test, CurrentTracksNewestAndPrunesToTwoGenerations) {
  const std::string dir = FreshCheckpointDir("vx_v2_prune");
  for (int64_t tag = 1; tag <= 4; ++tag) {
    ASSERT_TRUE(SaveTagged(tag, dir).ok());
  }
  EXPECT_EQ(CurrentGeneration(dir), "gen-000004");
  // Current + one fallback; older generations and temp dirs are pruned.
  EXPECT_EQ(GenerationDirs(dir),
            (std::vector<std::string>{"gen-000003", "gen-000004"}));
  Catalog restored;
  ASSERT_TRUE(LoadCatalog(dir, &restored).ok());
  EXPECT_EQ(ReadTag(restored), 4);
}

TEST(CatalogIoV2Test, ChecksumDamageFallsBackToPreviousGeneration) {
  const std::string dir = FreshCheckpointDir("vx_v2_crc");
  ASSERT_TRUE(SaveTagged(1, dir).ok());
  ASSERT_TRUE(SaveTagged(2, dir).ok());
  FlipByte(dir + "/" + CurrentGeneration(dir) + "/t0000.csv", 12);
  Catalog restored;
  ASSERT_TRUE(LoadCatalog(dir, &restored).ok());
  EXPECT_EQ(ReadTag(restored), 1);  // the damaged newest one is rejected
}

TEST(CatalogIoV2Test, TornTableFileFallsBack) {
  const std::string dir = FreshCheckpointDir("vx_v2_torn");
  ASSERT_TRUE(SaveTagged(1, dir).ok());
  ASSERT_TRUE(SaveTagged(2, dir).ok());
  const std::string file = dir + "/" + CurrentGeneration(dir) + "/t0000.csv";
  fs::resize_file(file, fs::file_size(file) - 5);
  Catalog restored;
  ASSERT_TRUE(LoadCatalog(dir, &restored).ok());
  EXPECT_EQ(ReadTag(restored), 1);
}

TEST(CatalogIoV2Test, MissingTableFileFallsBack) {
  const std::string dir = FreshCheckpointDir("vx_v2_missing_file");
  ASSERT_TRUE(SaveTagged(1, dir).ok());
  ASSERT_TRUE(SaveTagged(2, dir).ok());
  fs::remove(dir + "/" + CurrentGeneration(dir) + "/t0000.csv");
  Catalog restored;
  ASSERT_TRUE(LoadCatalog(dir, &restored).ok());
  EXPECT_EQ(ReadTag(restored), 1);
}

TEST(CatalogIoV2Test, EmptyManifestFallsBack) {
  const std::string dir = FreshCheckpointDir("vx_v2_empty_manifest");
  ASSERT_TRUE(SaveTagged(1, dir).ok());
  ASSERT_TRUE(SaveTagged(2, dir).ok());
  std::ofstream(dir + "/" + CurrentGeneration(dir) + "/MANIFEST",
                std::ios::trunc);
  Catalog restored;
  ASSERT_TRUE(LoadCatalog(dir, &restored).ok());
  EXPECT_EQ(ReadTag(restored), 1);
}

TEST(CatalogIoV2Test, UnsupportedHeaderIsPreciselyDiagnosed) {
  const std::string dir = FreshCheckpointDir("vx_v2_header");
  ASSERT_TRUE(SaveTagged(1, dir).ok());
  std::ofstream out(dir + "/" + CurrentGeneration(dir) + "/MANIFEST",
                    std::ios::trunc);
  out << "VERTEXICA_CHECKPOINT 99\n";
  out.close();
  Catalog restored;
  const Status st = LoadCatalog(dir, &restored);
  ASSERT_TRUE(st.IsIoError());
  EXPECT_NE(st.ToString().find("unsupported format header"),
            std::string::npos)
      << st.ToString();
  EXPECT_NE(st.ToString().find("VERTEXICA_CHECKPOINT 99"), std::string::npos);
}

TEST(CatalogIoV2Test, CurrentNamingMissingGenerationFallsBack) {
  const std::string dir = FreshCheckpointDir("vx_v2_dangling_current");
  ASSERT_TRUE(SaveTagged(1, dir).ok());
  std::ofstream out(dir + "/CURRENT", std::ios::trunc);
  out << "gen-999999\n";
  out.close();
  Catalog restored;
  ASSERT_TRUE(LoadCatalog(dir, &restored).ok());
  EXPECT_EQ(ReadTag(restored), 1);  // newest real generation wins
}

TEST(CatalogIoV2Test, EmptyDirectoryIsPreciselyDiagnosed) {
  const std::string dir = FreshCheckpointDir("vx_v2_nothing");
  fs::create_directories(dir);
  Catalog restored;
  const Status st = LoadCatalog(dir, &restored);
  ASSERT_TRUE(st.IsIoError());
  EXPECT_NE(st.ToString().find("no checkpoint"), std::string::npos)
      << st.ToString();
}

TEST(CatalogIoV2Test, FailedLoadLeavesCatalogUntouched) {
  const std::string dir = FreshCheckpointDir("vx_v2_untouched");
  ASSERT_TRUE(SaveTagged(1, dir).ok());
  FlipByte(dir + "/" + CurrentGeneration(dir) + "/t0000.csv", 12);
  Catalog catalog;
  FillTagged(&catalog, 7);  // pre-existing state
  EXPECT_FALSE(LoadCatalog(dir, &catalog).ok());  // only gen is damaged
  EXPECT_EQ(ReadTag(catalog), 7);  // nothing was partially installed
}

TEST(CatalogIoV2Test, LegacyV1LayoutStillLoads) {
  // Pre-v2 checkpoints: a bare MANIFEST next to the CSVs, no CURRENT, no
  // checksums. They must keep loading (unverified).
  const std::string dir = FreshCheckpointDir("vx_v2_legacy");
  fs::create_directories(dir);
  Catalog catalog;
  FillTagged(&catalog, 5);
  auto table = catalog.GetTable("t");
  ASSERT_TRUE(table.ok());
  std::ofstream csv(dir + "/t0000.csv", std::ios::binary);
  csv << ToCsv(**table);
  csv.close();
  std::ofstream manifest(dir + "/MANIFEST");
  manifest << "t0000.csv\tt\tid:INT64\ttag:INT64\n";
  manifest.close();
  Catalog restored;
  ASSERT_TRUE(LoadCatalog(dir, &restored).ok());
  EXPECT_EQ(ReadTag(restored), 5);
}

// Every fault site on the checkpoint path, error mode: SaveCatalog fails,
// yet the directory always restores a complete state — the previous one
// before the publish point, the new one after it. No site leaves a torn,
// unloadable mixture.
TEST(CheckpointFaultTest, InjectedErrorAtEverySiteLeavesRestorableState) {
  struct Case {
    const char* site;
    int64_t expect_tag;  // which state LoadCatalog restores after failure
  };
  const Case cases[] = {
      {"checkpoint.begin", 1},
      {"checkpoint.after_tables", 1},
      {"checkpoint.after_manifest", 1},
      {"checkpoint.after_rename", 1},   // durable but unpublished
      {"checkpoint.after_current", 2},  // published; only pruning remained
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.site);
    const std::string dir =
        FreshCheckpointDir(std::string("vx_fault_") + c.site);
    ASSERT_TRUE(SaveTagged(1, dir).ok());

    ArmFault(c.site, 1, FaultAction::kError);
    const Status st = SaveTagged(2, dir);
    DisarmAllFaults();
    ASSERT_TRUE(st.IsAborted()) << c.site << ": " << st.ToString();
    EXPECT_NE(st.ToString().find(c.site), std::string::npos);

    Catalog restored;
    ASSERT_TRUE(LoadCatalog(dir, &restored).ok());
    EXPECT_EQ(ReadTag(restored), c.expect_tag);

    // The next checkpoint after the failure publishes normally.
    ASSERT_TRUE(SaveTagged(3, dir).ok());
    Catalog after;
    ASSERT_TRUE(LoadCatalog(dir, &after).ok());
    EXPECT_EQ(ReadTag(after), 3);
  }
}

/// Baseline + interrupted-and-resumed PageRank under `opts`; the resumed
/// values must be bit-identical to the uninterrupted ones.
void RunCheckpointFaultResumeCase(const std::string& dir_name,
                                  const VertexicaOptions& base_opts) {
  Graph g = GenerateRmat(70, 350, 96);

  Catalog full;
  PageRankProgram baseline_program(8);
  ASSERT_TRUE(LoadGraphTables(&full, g, baseline_program).ok());
  Coordinator baseline(&full, &baseline_program, base_opts);
  ASSERT_TRUE(baseline.Run().ok());
  auto expect = ReadVertexValues(full, {});
  ASSERT_TRUE(expect.ok());

  // Interrupted run: checkpoint every superstep; the 3rd checkpoint fails
  // at the manifest boundary with an injected error, killing the run.
  const std::string dir = FreshCheckpointDir(dir_name);
  VertexicaOptions opts = base_opts;
  opts.checkpoint_every = 1;
  opts.checkpoint_dir = dir;
  PageRankProgram program(8);
  Catalog cat;
  ASSERT_TRUE(LoadGraphTables(&cat, g, program).ok());
  Coordinator interrupted(&cat, &program, opts);
  ArmFault("checkpoint.after_manifest", 3, FaultAction::kError);
  const Status st = interrupted.Run();
  DisarmAllFaults();
  ASSERT_TRUE(st.IsAborted()) << st.ToString();

  // Recovery: the directory restores the last good checkpoint, and the
  // resumed run finishes bit-identical to the uninterrupted baseline.
  Catalog recovered;
  ASSERT_TRUE(LoadCatalog(dir, &recovered).ok());
  VertexicaOptions resume = base_opts;
  resume.resume_from_checkpoint = true;
  PageRankProgram program2(8);
  Coordinator resumed(&recovered, &program2, resume);
  RunStats stats;
  ASSERT_TRUE(resumed.Run(&stats).ok());
  ASSERT_FALSE(stats.supersteps.empty());
  EXPECT_GT(stats.supersteps.front().superstep, 0);  // resumed, not restarted

  auto ranks = ReadVertexValues(recovered, {});
  ASSERT_TRUE(ranks.ok());
  ASSERT_EQ(ranks->size(), expect->size());
  for (size_t v = 0; v < expect->size(); ++v) {
    EXPECT_EQ((*ranks)[v], (*expect)[v]) << "vertex " << v;
  }
}

TEST(CheckpointFaultTest, FailedCheckpointResumesBitIdentical) {
  RunCheckpointFaultResumeCase("vx_fault_resume_default", {});
}

TEST(CheckpointFaultTest, FailedCheckpointResumesBitIdenticalSharded) {
  VertexicaOptions opts;
  opts.num_workers = 2;
  opts.num_shards = 4;  // > 1 engages RunSharded's checkpoint/resume path
  opts.num_partitions = 16;
  opts.use_union_input = false;
  RunCheckpointFaultResumeCase("vx_fault_resume_sharded", opts);
}

TEST(CoordinatorFaultTest, SuperstepFaultAbortsAndCleanRerunIsBitIdentical) {
  Graph g = GenerateRmat(60, 300, 97);

  Catalog full;
  PageRankProgram baseline_program(6);
  ASSERT_TRUE(LoadGraphTables(&full, g, baseline_program).ok());
  Coordinator baseline(&full, &baseline_program, {});
  ASSERT_TRUE(baseline.Run().ok());
  auto expect = ReadVertexValues(full, {});
  ASSERT_TRUE(expect.ok());

  // The superstep-boundary fault aborts the run mid-iteration...
  Catalog faulted;
  PageRankProgram program(6);
  ASSERT_TRUE(LoadGraphTables(&faulted, g, program).ok());
  Coordinator interrupted(&faulted, &program, {});
  ArmFault("coordinator.superstep", 3, FaultAction::kError);
  const Status st = interrupted.Run();
  DisarmAllFaults();
  ASSERT_TRUE(st.IsAborted()) << st.ToString();
  EXPECT_NE(st.ToString().find("coordinator.superstep"), std::string::npos);

  // ...and a clean rerun from fresh tables is bit-identical to the
  // baseline: the abort left no state that could bleed into a new run.
  Catalog rerun_cat;
  PageRankProgram program2(6);
  ASSERT_TRUE(LoadGraphTables(&rerun_cat, g, program2).ok());
  Coordinator rerun(&rerun_cat, &program2, {});
  ASSERT_TRUE(rerun.Run().ok());
  auto ranks = ReadVertexValues(rerun_cat, {});
  ASSERT_TRUE(ranks.ok());
  ASSERT_EQ(ranks->size(), expect->size());
  for (size_t v = 0; v < expect->size(); ++v) {
    EXPECT_EQ((*ranks)[v], (*expect)[v]) << "vertex " << v;
  }
}

TEST(CoordinatorFaultTest, ExchangeFaultAbortsShardedRun) {
  Graph g = GenerateRmat(50, 250, 98);
  VertexicaOptions opts;
  opts.num_shards = 4;  // > 1 engages RunSharded and its exchange phase
  opts.num_partitions = 8;
  opts.use_union_input = false;

  // The message exchange is the only cross-shard phase — a worker failure
  // in a distributed deployment surfaces exactly here.
  Catalog cat;
  PageRankProgram program(5);
  ASSERT_TRUE(LoadGraphTables(&cat, g, program).ok());
  Coordinator interrupted(&cat, &program, opts);
  ArmFault("coordinator.exchange", 1, FaultAction::kError);
  const Status st = interrupted.Run();
  DisarmAllFaults();
  ASSERT_TRUE(st.IsAborted()) << st.ToString();
  EXPECT_NE(st.ToString().find("coordinator.exchange"), std::string::npos);

  Catalog clean;
  PageRankProgram program2(5);
  ASSERT_TRUE(LoadGraphTables(&clean, g, program2).ok());
  Coordinator rerun(&clean, &program2, opts);
  EXPECT_TRUE(rerun.Run().ok());
}

TEST(CheckpointCrashDeathTest, CrashLeavesLastGoodGenerationRestorable) {
  const std::string dir = FreshCheckpointDir("vx_crash_death");
  ASSERT_TRUE(SaveTagged(1, dir).ok());

  // The crash action _Exits with no unwinding — to everything on disk this
  // is a SIGKILL mid-checkpoint, between manifest fsync and publish.
  EXPECT_EXIT(
      {
        ArmFault("checkpoint.after_manifest", 1, FaultAction::kCrash);
        (void)SaveTagged(2, dir);
        std::exit(0);  // unreachable: the fault point exits first
      },
      ::testing::ExitedWithCode(kFaultCrashExitCode), "");

  // The kill left a .tmp- staging dir at most; the published generation is
  // intact and the next save after recovery publishes over it cleanly.
  Catalog restored;
  ASSERT_TRUE(LoadCatalog(dir, &restored).ok());
  EXPECT_EQ(ReadTag(restored), 1);
  ASSERT_TRUE(SaveTagged(3, dir).ok());
  Catalog after;
  ASSERT_TRUE(LoadCatalog(dir, &after).ok());
  EXPECT_EQ(ReadTag(after), 3);
}

// Runs only under the CI fault-injection pass (check.sh arms
// VERTEXICA_FAULTS for exactly this filter): proves the *environment*
// arming path fires in a fresh process, not just the in-process API.
TEST(FaultEnvTest, CheckpointFaultArmedViaEnvironmentFires) {
  const char* spec = std::getenv("VERTEXICA_FAULTS");
  if (spec == nullptr ||
      std::string(spec).find("checkpoint.after_manifest") ==
          std::string::npos) {
    GTEST_SKIP() << "set VERTEXICA_FAULTS=checkpoint.after_manifest=1:error "
                    "to exercise the env arming path";
  }
  const auto armed = ArmedFaultSites();
  ASSERT_NE(std::find(armed.begin(), armed.end(),
                      std::string("checkpoint.after_manifest")),
            armed.end());

  const std::string dir = FreshCheckpointDir("vx_fault_env");
  const Status st = SaveTagged(1, dir);
  ASSERT_TRUE(st.IsAborted()) << st.ToString();
  EXPECT_GT(FaultHits("checkpoint.after_manifest"), 0);

  // One-shot fault: the retry checkpoints cleanly and restores.
  ASSERT_TRUE(SaveTagged(1, dir).ok());
  Catalog restored;
  ASSERT_TRUE(LoadCatalog(dir, &restored).ok());
  EXPECT_EQ(ReadTag(restored), 1);
  DisarmAllFaults();
}

// ------------------------------------------- Edge-derived cache invalidation

TEST(CoordinatorCacheTest, EdgeTableReplacedBetweenRunsRebuildsCaches) {
  // One coordinator, two runs, the edge table replaced in between (the
  // dynamic-graph pattern): the per-snapshot edge-derived caches — the
  // join side and the frontier's CSR index — must be invalidated by
  // snapshot identity and rebuilt, or run 2 computes distances over the
  // stale edge set. Exercised on both input paths with the frontier
  // forced on so the CSR cache is actually consulted.
  const int64_t n = 20;
  Graph chain;
  chain.num_vertices = n;
  for (int64_t v = 0; v + 1 < n; ++v) chain.AddEdge(v, v + 1, 1.0);
  Graph shortcut = chain;
  shortcut.AddEdge(0, n / 2, 0.5);  // new shortest path to the back half

  ScopedFrontierMode on(FrontierMode::kOn);
  for (const bool union_input : {true, false}) {
    VertexicaOptions opts;
    opts.use_union_input = union_input;
    ShortestPathProgram program(0);
    Catalog cat;
    ASSERT_TRUE(LoadGraphTables(&cat, chain, program).ok());
    Coordinator coordinator(&cat, &program, opts);
    ASSERT_TRUE(coordinator.Run().ok());
    auto before = ReadVertexValues(cat, {});
    ASSERT_TRUE(before.ok());
    EXPECT_DOUBLE_EQ((*before)[static_cast<size_t>(n / 2)],
                     static_cast<double>(n / 2));

    // Replace the graph tables (same coordinator!) and rerun. A fresh
    // coordinator over the same catalog is the trusted reference.
    ASSERT_TRUE(LoadGraphTables(&cat, shortcut, program).ok());
    ASSERT_TRUE(coordinator.Run().ok());
    auto after = ReadVertexValues(cat, {});
    ASSERT_TRUE(after.ok());

    Catalog fresh_cat;
    ShortestPathProgram fresh_program(0);
    auto expect = RunShortestPaths(&fresh_cat, shortcut, 0, opts);
    ASSERT_TRUE(expect.ok());
    ASSERT_EQ(after->size(), expect->size());
    for (size_t v = 0; v < expect->size(); ++v) {
      EXPECT_EQ((*after)[v], (*expect)[v])
          << (union_input ? "union" : "join") << " input, vertex " << v;
    }
    // The shortcut must actually be visible: distance to the back half
    // drops, which a stale edge cache cannot produce.
    EXPECT_DOUBLE_EQ((*after)[static_cast<size_t>(n / 2)], 0.5);
  }
}

// ------------------------------------------------- Label propagation

TEST(LabelPropagationTest, TwoCliquesTwoCommunities) {
  // Two 5-cliques joined by a single bridge edge.
  Graph g;
  g.num_vertices = 10;
  for (int64_t a = 0; a < 5; ++a) {
    for (int64_t b = a + 1; b < 5; ++b) g.AddEdge(a, b);
  }
  for (int64_t a = 5; a < 10; ++a) {
    for (int64_t b = a + 1; b < 10; ++b) g.AddEdge(a, b);
  }
  g.AddEdge(4, 5);
  Catalog cat;
  auto labels = RunLabelPropagation(&cat, g, 10);
  ASSERT_TRUE(labels.ok()) << labels.status().ToString();
  // Within-clique agreement.
  for (int64_t v = 1; v < 5; ++v) EXPECT_EQ((*labels)[static_cast<size_t>(v)], (*labels)[0]);
  for (int64_t v = 6; v < 10; ++v) EXPECT_EQ((*labels)[static_cast<size_t>(v)], (*labels)[5]);
}

TEST(LabelPropagationTest, DeterministicAcrossConfigurations) {
  Graph g = GenerateRmat(100, 600, 82);
  Catalog cat1;
  auto l1 = RunLabelPropagation(&cat1, g, 6);
  VertexicaOptions opts;
  opts.num_workers = 2;
  opts.num_partitions = 16;
  opts.use_union_input = false;
  Catalog cat2;
  auto l2 = RunLabelPropagation(&cat2, g, 6, opts);
  ASSERT_TRUE(l1.ok());
  ASSERT_TRUE(l2.ok());
  EXPECT_EQ(*l1, *l2);
}

TEST(LabelPropagationTest, IsolatedVertexKeepsOwnLabel) {
  Graph g;
  g.num_vertices = 3;
  g.AddEdge(0, 1);
  Catalog cat;
  auto labels = RunLabelPropagation(&cat, g, 5);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ((*labels)[2], 2);
}

}  // namespace
}  // namespace vertexica
