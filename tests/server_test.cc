// Tests for the serving subsystem: env-knob hardening, ExecKnobs/
// ExecContext capture+install, admission control, catalog snapshots, and —
// the acceptance bar — N concurrent mixed clients on one EngineServer
// producing bit-identical results to the same requests run serially.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "api/exec_context.h"
#include "catalog/catalog.h"
#include "common/cancel.h"
#include "common/env_knob.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "exec/exec_knobs.h"
#include "graphgen/generators.h"
#include "server/admission.h"
#include "server/engine_server.h"
#include "storage/table.h"

namespace vertexica {
namespace {

Graph ParityGraph() {
  Graph g = GenerateRmat(120, 700, 13);
  AssignRandomWeights(&g, 1.0, 5.0, 13);
  return g;
}

// A second, structurally different graph for update/snapshot tests.
Graph OtherGraph() {
  Graph g = GenerateRmat(80, 400, 29);
  AssignRandomWeights(&g, 1.0, 5.0, 29);
  return g;
}

// ------------------------------------------------------------ env knobs

TEST(EnvKnobTest, ParseKnobIntAcceptsStrictIntegers) {
  bool clamped = true;
  auto v = ParseKnobInt("8", 1, 256, &clamped);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 8);
  EXPECT_FALSE(clamped);

  v = ParseKnobInt("  42  ", 1, 256);  // surrounding whitespace is fine
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
}

TEST(EnvKnobTest, ParseKnobIntRejectsGarbage) {
  EXPECT_FALSE(ParseKnobInt("8abc", 1, 256).has_value());  // trailing junk
  EXPECT_FALSE(ParseKnobInt("abc", 1, 256).has_value());
  EXPECT_FALSE(ParseKnobInt("", 1, 256).has_value());
  EXPECT_FALSE(ParseKnobInt("   ", 1, 256).has_value());
  EXPECT_FALSE(ParseKnobInt(nullptr, 1, 256).has_value());
  EXPECT_FALSE(ParseKnobInt("1.5", 1, 256).has_value());
}

TEST(EnvKnobTest, ParseKnobIntClampsOutOfRange) {
  bool clamped = false;
  auto v = ParseKnobInt("100000", 1, 256, &clamped);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 256);
  EXPECT_TRUE(clamped);

  v = ParseKnobInt("-3", 1, 256, &clamped);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1);
  EXPECT_TRUE(clamped);
}

TEST(EnvKnobTest, EnvIntKnobFallsBackAndClamps) {
  ::setenv("VERTEXICA_TEST_KNOB", "junk", 1);
  EXPECT_EQ(EnvIntKnob("VERTEXICA_TEST_KNOB", 1, 64, 7), 7);
  ::setenv("VERTEXICA_TEST_KNOB", "9999", 1);
  EXPECT_EQ(EnvIntKnob("VERTEXICA_TEST_KNOB", 1, 64, 7), 64);
  ::setenv("VERTEXICA_TEST_KNOB", "12", 1);
  EXPECT_EQ(EnvIntKnob("VERTEXICA_TEST_KNOB", 1, 64, 7), 12);
  ::unsetenv("VERTEXICA_TEST_KNOB");
  EXPECT_EQ(EnvIntKnob("VERTEXICA_TEST_KNOB", 1, 64, 7), 7);
}

TEST(EnvKnobTest, EnvTokenKnobMatchesCaseInsensitively) {
  ::setenv("VERTEXICA_TEST_TOKEN", "FORCE", 1);
  EXPECT_EQ(EnvTokenKnob("VERTEXICA_TEST_TOKEN", {"off", "auto", "force"},
                         "auto"),
            "force");
  ::setenv("VERTEXICA_TEST_TOKEN", "bogus", 1);
  EXPECT_EQ(EnvTokenKnob("VERTEXICA_TEST_TOKEN", {"off", "auto", "force"},
                         "auto"),
            "auto");
  ::unsetenv("VERTEXICA_TEST_TOKEN");
}

// ------------------------------------------------- ExecKnobs / ExecContext

TEST(ExecKnobsTest, CaptureInstallRoundTripsAcrossThreads) {
  ScopedExecThreads threads(3);
  ScopedExecShards shards(2);
  ScopedEncodingMode encoding(EncodingMode::kForce);
  ScopedMergeJoin merge(false);
  ScopedFrontierMode frontier(FrontierMode::kOn);

  const ExecKnobs knobs = ExecKnobs::Capture();
  EXPECT_EQ(knobs.threads, 3);
  EXPECT_EQ(knobs.shards, 2);
  EXPECT_EQ(knobs.encoding, EncodingMode::kForce);
  EXPECT_FALSE(knobs.merge_join);
  EXPECT_EQ(knobs.frontier, FrontierMode::kOn);

  // A fresh thread has none of the thread-local overrides; installing the
  // captured knobs must reproduce the caller's configuration exactly.
  int seen_threads = 0, seen_shards = 0;
  EncodingMode seen_encoding = EncodingMode::kAuto;
  bool seen_merge = true;
  FrontierMode seen_frontier = FrontierMode::kOff;
  std::thread worker([&]() {
    ScopedExecKnobs install(knobs);
    seen_threads = ExecThreads();
    seen_shards = ExecShards();
    seen_encoding = AmbientEncodingMode();
    seen_merge = MergeJoinEnabled();
    seen_frontier = AmbientFrontierMode();
  });
  worker.join();
  EXPECT_EQ(seen_threads, 3);
  EXPECT_EQ(seen_shards, 2);
  EXPECT_EQ(seen_encoding, EncodingMode::kForce);
  EXPECT_FALSE(seen_merge);
  EXPECT_EQ(seen_frontier, FrontierMode::kOn);
}

TEST(ExecContextTest, FromRequestResolvesOverrides) {
  RunRequest request;
  request.threads = 5;
  request.shards = 3;
  request.encoding = "force";
  request.merge_join = "off";
  request.frontier = "on";
  const ExecContext ctx = ExecContext::FromRequest(request);
  EXPECT_EQ(ctx.knobs.threads, 5);
  EXPECT_EQ(ctx.knobs.shards, 3);
  EXPECT_EQ(ctx.knobs.encoding, EncodingMode::kForce);
  EXPECT_FALSE(ctx.knobs.merge_join);
  EXPECT_EQ(ctx.knobs.frontier, FrontierMode::kOn);
  EXPECT_EQ(ctx.DemandThreads(), 5);

  // Unset fields inherit the ambient configuration.
  ScopedExecThreads threads(2);
  ScopedFrontierMode off(FrontierMode::kOff);
  RunRequest ambient;
  const ExecContext inherited = ExecContext::FromRequest(ambient);
  EXPECT_EQ(inherited.knobs.threads, 2);
  EXPECT_TRUE(inherited.knobs.merge_join);
  EXPECT_EQ(inherited.knobs.frontier, FrontierMode::kOff);

  // An explicit request field beats the ambient scope, like threads.
  RunRequest explicit_frontier;
  explicit_frontier.frontier = "auto";
  const ExecContext resolved = ExecContext::FromRequest(explicit_frontier);
  EXPECT_EQ(resolved.knobs.frontier, FrontierMode::kAuto);
}

TEST(ExecKnobsTest, CancelTokenRidesTheKnobPlumbing) {
  CancelToken token = CancelToken::Make();
  ExecKnobs knobs;
  {
    ScopedCancelToken scope(token);
    knobs = ExecKnobs::Capture();
  }
  EXPECT_EQ(knobs.cancel, token);

  // Installing the captured knobs on a fresh thread reinstalls the token —
  // a pool task polls the submitter's stop button, not a null one.
  token.Cancel();
  Status seen;
  std::thread worker([&]() {
    ScopedExecKnobs install(knobs);
    seen = CheckAmbientCancel();
  });
  worker.join();
  EXPECT_TRUE(seen.IsCancelled()) << seen.ToString();
}

TEST(ExecContextTest, FromRequestResolvesDeadline) {
  RunRequest no_deadline;
  EXPECT_TRUE(ExecContext::FromRequest(no_deadline).knobs.cancel.null());

  RunRequest with_deadline;
  with_deadline.deadline_ms = 3600 * 1e3;  // one hour: resolves, never fires
  const ExecContext ctx = ExecContext::FromRequest(with_deadline);
  ASSERT_FALSE(ctx.knobs.cancel.null());
  std::chrono::steady_clock::time_point deadline;
  EXPECT_TRUE(ctx.knobs.cancel.deadline(&deadline));
  EXPECT_TRUE(ctx.knobs.cancel.Check().ok());

  RunRequest expired;
  expired.deadline_ms = 1e-9;  // resolved against arrival: already past
  EXPECT_TRUE(ExecContext::FromRequest(expired)
                  .knobs.cancel.Check()
                  .IsDeadlineExceeded());
}

// --------------------------------------------------------- admission

TEST(AdmissionTest, ClampsDemandToBudget) {
  AdmissionController admission(4);
  auto ticket = admission.Admit(16);
  EXPECT_EQ(ticket.granted_threads(), 4);
  EXPECT_TRUE(ticket.clamped());
  EXPECT_EQ(admission.in_use(), 4);
  ticket.Release();
  EXPECT_EQ(admission.in_use(), 0);
  EXPECT_EQ(admission.stats().clamped, 1u);
}

TEST(AdmissionTest, TicketReleasesOnDestruction) {
  AdmissionController admission(2);
  {
    auto ticket = admission.Admit(2);
    EXPECT_EQ(admission.in_use(), 2);
  }
  EXPECT_EQ(admission.in_use(), 0);
}

TEST(AdmissionTest, QueuesInFifoOrder) {
  AdmissionController admission(2);
  auto first = admission.Admit(2);  // exhausts the budget

  std::atomic<int> order{0};
  int second_pos = 0, third_pos = 0;
  std::thread second([&]() {
    auto t = admission.Admit(2);
    second_pos = ++order;
  });
  // Give `second` time to enqueue before `third` — FIFO is by arrival.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread third([&]() {
    auto t = admission.Admit(1);  // would fit sooner, must not overtake
    third_pos = ++order;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(order.load(), 0);  // both still queued behind `first`
  first.Release();
  second.join();
  third.join();
  EXPECT_EQ(second_pos, 1);
  EXPECT_EQ(third_pos, 2);
  const auto stats = admission.stats();
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.queued, 2u);
  EXPECT_GT(stats.total_queue_seconds, 0.0);
}

TEST(AdmissionTest, NeverOversubscribesUnderStress) {
  AdmissionController admission(3);
  std::vector<std::thread> workers;
  for (int w = 0; w < 12; ++w) {
    workers.emplace_back([&admission, w]() {
      for (int i = 0; i < 20; ++i) {
        auto ticket = admission.Admit(1 + (w + i) % 3);
        // in_use includes this ticket; the invariant is the budget cap.
        EXPECT_LE(admission.in_use(), 3);
      }
    });
  }
  for (auto& t : workers) t.join();
  const auto stats = admission.stats();
  EXPECT_EQ(stats.admitted, 12u * 20u);
  EXPECT_LE(stats.max_in_use, 3);
}

TEST(AdmissionTest, QueueWaitDeadlineShedsWithDeadlineExceeded) {
  AdmissionController admission(2);
  auto hog = admission.Admit(2);  // exhausts the budget

  const CancelToken deadline = CancelToken().WithDeadlineAfter(0.05);
  auto shed = admission.Admit(1, deadline);
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsDeadlineExceeded()) << shed.status().ToString();
  EXPECT_EQ(admission.stats().shed, 1u);

  // The abandoned serial must not wedge the FIFO: the next waiter admits
  // as soon as the budget frees up.
  hog.Release();
  auto next = admission.Admit(2, CancelToken());
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->granted_threads(), 2);
}

TEST(AdmissionTest, CancelledTokenShedsImmediately) {
  AdmissionController admission(1);
  auto hog = admission.Admit(1);
  CancelToken token = CancelToken::Make();
  token.Cancel();
  auto shed = admission.Admit(1, token);
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsCancelled());
  EXPECT_EQ(admission.stats().shed, 1u);
  EXPECT_EQ(admission.in_use(), 1);  // nothing was reserved for the shed
}

TEST(AdmissionTest, ShedWaiterDoesNotBlockLaterWaiters) {
  AdmissionController admission(2);
  auto hog = admission.Admit(2);

  // Waiter A holds the FIFO head with a cancellable token; waiter B queues
  // behind it with no token at all.
  CancelToken a_token = CancelToken::Make();
  std::atomic<bool> a_shed{false};
  std::thread a([&]() {
    auto t = admission.Admit(1, a_token);
    a_shed = !t.ok() && t.status().IsCancelled();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::atomic<bool> b_admitted{false};
  std::thread b([&]() {
    auto t = admission.Admit(2, CancelToken());
    b_admitted = t.ok();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  a_token.Cancel();  // A abandons its place at the head of the line
  a.join();
  EXPECT_TRUE(a_shed.load());
  hog.Release();  // B — behind the abandoned serial — must still admit
  b.join();
  EXPECT_TRUE(b_admitted.load());
  EXPECT_EQ(admission.stats().shed, 1u);
  EXPECT_EQ(admission.in_use(), 0);
}

TEST(AdmissionTest, InjectedAdmissionFaultDoesNotLeakBudget) {
  AdmissionController admission(2);

  // The fault fires before any reservation, so a failed Admit must leave
  // the budget untouched and the FIFO unwedged.
  ArmFault("admission.admit", 1, FaultAction::kError);
  auto shed = admission.Admit(1, CancelToken());
  DisarmAllFaults();
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsAborted()) << shed.status().ToString();
  EXPECT_EQ(admission.in_use(), 0);

  auto next = admission.Admit(2, CancelToken());
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->granted_threads(), 2);
}

// ------------------------------------------------------ catalog snapshots

Table OneColumnTable(int64_t rows, int64_t value) {
  std::vector<int64_t> data(static_cast<size_t>(rows), value);
  auto made = Table::Make(Schema({{"x", DataType::kInt64}}),
                          {Column::FromInts(std::move(data))});
  VX_CHECK(made.ok());
  return std::move(made).MoveValueUnsafe();
}

TEST(CatalogSnapshotTest, SnapshotIgnoresLaterMutations) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("t", OneColumnTable(3, 1)).ok());
  EXPECT_EQ(catalog.version(), 1u);

  const CatalogSnapshot snapshot = catalog.Snapshot();
  EXPECT_EQ(snapshot.version(), 1u);

  ASSERT_TRUE(catalog.ReplaceTable("t", OneColumnTable(7, 2)).ok());
  ASSERT_TRUE(catalog.CreateTable("u", OneColumnTable(1, 3)).ok());
  EXPECT_EQ(catalog.version(), 3u);

  // The snapshot still sees the original table set and versions.
  auto old_t = snapshot.GetTable("t");
  ASSERT_TRUE(old_t.ok());
  EXPECT_EQ((*old_t)->num_rows(), 3);
  EXPECT_FALSE(snapshot.HasTable("u"));

  auto new_t = catalog.GetTable("t");
  ASSERT_TRUE(new_t.ok());
  EXPECT_EQ((*new_t)->num_rows(), 7);
}

TEST(CatalogSnapshotTest, SeededCatalogSharesTablesZeroCopy) {
  Catalog base;
  ASSERT_TRUE(base.CreateTable("edge", OneColumnTable(5, 9)).ok());
  const CatalogSnapshot snapshot = base.Snapshot();

  Catalog seeded(snapshot);
  EXPECT_EQ(seeded.version(), snapshot.version());
  auto from_base = base.GetTable("edge");
  auto from_seeded = seeded.GetTable("edge");
  ASSERT_TRUE(from_base.ok() && from_seeded.ok());
  // Same physical table, not a copy.
  EXPECT_EQ(from_base->get(), from_seeded->get());

  // Writes to the seeded catalog stay private.
  ASSERT_TRUE(seeded.ReplaceTable("edge", OneColumnTable(1, 0)).ok());
  auto base_after = base.GetTable("edge");
  ASSERT_TRUE(base_after.ok());
  EXPECT_EQ((*base_after)->num_rows(), 5);
}

// ------------------------------------------------------------ the server

TEST(EngineServerTest, GraphLifecycleAndVersions) {
  EngineServer server;
  EXPECT_TRUE(server.CreateGraph("g", ParityGraph()).ok());
  EXPECT_FALSE(server.CreateGraph("g", ParityGraph()).ok());  // duplicate
  auto version = server.GraphVersion("g");
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 1u);

  EXPECT_TRUE(server.UpdateGraph("g", OtherGraph()).ok());
  version = server.GraphVersion("g");
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 2u);

  EXPECT_EQ(server.GraphNames(), std::vector<std::string>{"g"});
  EXPECT_TRUE(server.DropGraph("g").ok());
  EXPECT_FALSE(server.DropGraph("g").ok());
  EXPECT_FALSE(server.Run("g", RunRequest{}).ok());
}

TEST(EngineServerTest, RunReportsServingMetrics) {
  // Explicit budget: the default resolves to the pool size, which on a
  // small machine could clamp the granted threads below the request.
  ServerOptions options;
  options.admission_budget_threads = 4;
  EngineServer server(options);
  ASSERT_TRUE(server.CreateGraph("g", ParityGraph()).ok());
  RunRequest request;
  request.algorithm = kPageRank;
  request.backend = kVertexicaBackendId;
  request.threads = 2;
  auto result = server.Run("g", request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->backend_metrics.count("server_queue_seconds"), 1u);
  EXPECT_EQ(result->backend_metrics.count("server_run_seconds"), 1u);
  EXPECT_EQ(result->backend_metrics["server_granted_threads"], 2.0);
  EXPECT_EQ(result->backend_metrics["server_graph_version"], 1.0);
  EXPECT_EQ(server.in_flight(), 0);
  EXPECT_EQ(server.admission_stats().admitted, 1u);
}

// The tentpole acceptance test: concurrent mixed requests with differing
// knobs on ONE shared EngineServer are bit-identical to the same requests
// run serially — all four backends, pagerank + sssp.
TEST(EngineServerTest, ConcurrentMixedClientsBitIdenticalToSerial) {
  const Graph g = ParityGraph();

  // The request mix: backends × algorithms × knob variants. 16 requests,
  // run by 16 concurrent clients (≥ 8 per the acceptance bar).
  std::vector<RunRequest> requests;
  for (const char* backend :
       {kVertexicaBackendId, kSqlGraphBackendId, kGiraphBackendId,
        kGraphDbBackendId}) {
    for (const char* algorithm : {kPageRank, kSssp}) {
      for (int variant = 0; variant < 2; ++variant) {
        RunRequest request;
        request.backend = backend;
        request.algorithm = algorithm;
        request.source = 1;
        request.threads = 1 + variant * 2;        // 1 or 3
        request.shards = 1 + variant * 3;         // 1 or 4
        request.encoding = variant == 0 ? "off" : "force";
        request.merge_join = variant == 0 ? "off" : "on";
        requests.push_back(request);
      }
    }
  }
  ASSERT_GE(requests.size(), 8u);

  // Serial reference: each request on its own fresh engine.
  std::vector<RunResult> serial;
  for (const RunRequest& request : requests) {
    Engine engine;
    ASSERT_TRUE(engine.LoadGraph(g).ok());
    auto result = engine.Run(request);
    ASSERT_TRUE(result.ok()) << request.backend << "/" << request.algorithm
                             << ": " << result.status().ToString();
    serial.push_back(*std::move(result));
  }

  // Concurrent: all requests at once against one shared server.
  EngineServer server;
  ASSERT_TRUE(server.CreateGraph("g", g).ok());
  std::vector<Result<RunResult>> concurrent;
  concurrent.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    concurrent.push_back(Status::Internal("not run"));
  }
  std::vector<std::thread> clients;
  for (size_t i = 0; i < requests.size(); ++i) {
    clients.emplace_back([&, i]() {
      concurrent[i] = server.Run("g", requests[i]);
    });
  }
  for (auto& t : clients) t.join();

  for (size_t i = 0; i < requests.size(); ++i) {
    const std::string label = requests[i].backend + std::string("/") +
                              requests[i].algorithm + "/variant" +
                              std::to_string(i % 2);
    ASSERT_TRUE(concurrent[i].ok())
        << label << ": " << concurrent[i].status().ToString();
    const RunResult& c = *concurrent[i];
    const RunResult& s = serial[i];
    ASSERT_EQ(c.values.size(), s.values.size()) << label;
    for (size_t v = 0; v < s.values.size(); ++v) {
      // Bit-identical, not approximately equal.
      EXPECT_EQ(c.values[v], s.values[v]) << label << ": vertex " << v;
    }
    EXPECT_EQ(c.aggregates, s.aggregates) << label;
  }

  const auto stats = server.admission_stats();
  EXPECT_EQ(stats.admitted, requests.size());
  EXPECT_LE(stats.max_in_use, server.admission_budget_threads());
}

// Snapshot isolation: an update installed mid-session does not affect the
// session's pinned version — no timing dependence, the pin is explicit.
TEST(EngineServerTest, SessionsAreSnapshotIsolated) {
  EngineServer server;
  ASSERT_TRUE(server.CreateGraph("g", ParityGraph()).ok());

  auto session = server.OpenSession("g");
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session->graph_version(), 1u);

  RunRequest request;
  request.algorithm = kPageRank;
  request.backend = kVertexicaBackendId;
  auto before = session->Run(request);
  ASSERT_TRUE(before.ok());

  // Install a structurally different graph mid-session.
  ASSERT_TRUE(server.UpdateGraph("g", OtherGraph()).ok());

  // The session still reads version 1: bit-identical to the run before
  // the update.
  auto pinned = session->Run(request);
  ASSERT_TRUE(pinned.ok());
  ASSERT_EQ(pinned->values.size(), before->values.size());
  for (size_t v = 0; v < before->values.size(); ++v) {
    EXPECT_EQ(pinned->values[v], before->values[v]) << "vertex " << v;
  }
  EXPECT_EQ(pinned->backend_metrics["server_graph_version"], 1.0);

  // A fresh server-level run sees version 2 (a different graph).
  auto latest = server.Run("g", request);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->backend_metrics["server_graph_version"], 2.0);
  EXPECT_NE(latest->values.size(), before->values.size());

  // Refresh re-pins the session to the latest version.
  ASSERT_TRUE(session->Refresh().ok());
  EXPECT_EQ(session->graph_version(), 2u);
  auto refreshed = session->Run(request);
  ASSERT_TRUE(refreshed.ok());
  EXPECT_EQ(refreshed->values.size(), latest->values.size());
}

// Concurrent runs against a session must keep their pinned engine alive
// even when the server drops the graph underneath them.
TEST(EngineServerTest, DroppedGraphStaysAliveForPinnedSessions) {
  EngineServer server;
  ASSERT_TRUE(server.CreateGraph("g", ParityGraph()).ok());
  auto session = server.OpenSession("g");
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(server.DropGraph("g").ok());

  RunRequest request;
  request.algorithm = kSssp;
  request.backend = kSqlGraphBackendId;
  request.source = 1;
  auto result = session->Run(request);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(server.Run("g", request).ok());
}

// ----------------------------------------- deadlines, cancel, retries

TEST(EngineServerTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  EngineServer server;
  ASSERT_TRUE(server.CreateGraph("g", ParityGraph()).ok());
  RunRequest request;
  request.algorithm = kPageRank;
  request.backend = kVertexicaBackendId;
  request.deadline_ms = 1e-9;  // expires on arrival
  const auto result = server.Run("g", request);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  // The failed run released its reservation (if it was ever admitted).
  EXPECT_EQ(server.in_flight(), 0);
}

// Saturation: 8 concurrent clients against a 1-thread admission budget,
// half with an already-expired deadline. The deadline requests shed (or
// stop at the first superstep boundary) with DeadlineExceeded; the
// survivors are unaffected and bit-identical to a serial reference run.
TEST(EngineServerTest, SaturatedServerShedsDeadlinedRequestsOnly) {
  const Graph g = ParityGraph();
  RunRequest request;
  request.algorithm = kPageRank;
  request.backend = kVertexicaBackendId;
  request.threads = 1;

  Engine reference_engine;
  ASSERT_TRUE(reference_engine.LoadGraph(g).ok());
  auto reference = reference_engine.Run(request);
  ASSERT_TRUE(reference.ok());

  ServerOptions options;
  options.admission_budget_threads = 1;  // fully serialized admission
  EngineServer server(options);
  ASSERT_TRUE(server.CreateGraph("g", g).ok());

  constexpr int kClients = 8;
  std::vector<Result<RunResult>> results;
  for (int i = 0; i < kClients; ++i) {
    results.push_back(Status::Internal("not run"));
  }
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i]() {
      RunRequest mine = request;
      if (i % 2 == 1) mine.deadline_ms = 1e-9;
      results[static_cast<size_t>(i)] = server.Run("g", mine);
    });
  }
  for (auto& t : clients) t.join();

  for (int i = 0; i < kClients; ++i) {
    const auto& result = results[static_cast<size_t>(i)];
    if (i % 2 == 1) {
      ASSERT_FALSE(result.ok()) << "client " << i;
      EXPECT_TRUE(result.status().IsDeadlineExceeded())
          << "client " << i << ": " << result.status().ToString();
    } else {
      ASSERT_TRUE(result.ok())
          << "client " << i << ": " << result.status().ToString();
      EXPECT_EQ(result->values, reference->values) << "client " << i;
    }
  }
  EXPECT_EQ(server.in_flight(), 0);
  // Shed requests released (or never took) their tickets: a full-budget
  // request admits immediately afterwards.
  auto after = server.Run("g", request);
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

TEST(EngineServerTest, CancelledSessionsReleaseTicketsSurvivorsUnaffected) {
  const Graph g = ParityGraph();
  RunRequest request;
  request.algorithm = kPageRank;
  request.backend = kVertexicaBackendId;
  request.threads = 1;

  Engine reference_engine;
  ASSERT_TRUE(reference_engine.LoadGraph(g).ok());
  auto reference = reference_engine.Run(request);
  ASSERT_TRUE(reference.ok());

  ServerOptions options;
  options.admission_budget_threads = 2;
  EngineServer server(options);
  ASSERT_TRUE(server.CreateGraph("g", g).ok());

  constexpr int kClients = 8;
  std::vector<Session> sessions;
  for (int i = 0; i < kClients; ++i) {
    auto session = server.OpenSession("g");
    ASSERT_TRUE(session.ok());
    sessions.push_back(*std::move(session));
  }
  // Cancel is sticky, so cancelling before the run makes the outcome
  // deterministic: the run stops at its first cooperative boundary
  // whether it was queued or already admitted.
  for (int i = 0; i < kClients; i += 2) sessions[i].Cancel();

  std::vector<Result<RunResult>> results;
  for (int i = 0; i < kClients; ++i) {
    results.push_back(Status::Internal("not run"));
  }
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i]() {
      results[static_cast<size_t>(i)] =
          sessions[static_cast<size_t>(i)].Run(request);
    });
  }
  for (auto& t : clients) t.join();

  for (int i = 0; i < kClients; ++i) {
    const auto& result = results[static_cast<size_t>(i)];
    if (i % 2 == 0) {
      ASSERT_FALSE(result.ok()) << "session " << i;
      EXPECT_TRUE(result.status().IsCancelled())
          << "session " << i << ": " << result.status().ToString();
    } else {
      ASSERT_TRUE(result.ok())
          << "session " << i << ": " << result.status().ToString();
      EXPECT_EQ(result->values, reference->values) << "session " << i;
    }
  }
  EXPECT_EQ(server.in_flight(), 0);

  // A cancelled session stays cancelled; its ticket is long gone, so the
  // budget is fully available to a fresh full-budget request.
  auto again = sessions[0].Run(request);
  ASSERT_FALSE(again.ok());
  EXPECT_TRUE(again.status().IsCancelled());
  RunRequest full = request;
  full.threads = 2;
  auto after = server.Run("g", full);
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

TEST(EngineServerTest, TransientFailuresRetryWithBoundedBackoff) {
  EngineServer server;
  ASSERT_TRUE(server.CreateGraph("g", ParityGraph()).ok());
  RunRequest request;
  request.algorithm = kPageRank;
  request.backend = kVertexicaBackendId;

  // One injected transient failure: the retry absorbs it.
  ArmFault("server.run", 1, FaultAction::kError);
  auto result = server.Run("g", request);
  DisarmAllFaults();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(server.retry_count(), 1u);
  EXPECT_EQ(result->backend_metrics["server_attempts"], 2.0);

  // A run with no faults armed reports one attempt and no new retries.
  auto clean = server.Run("g", request);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->backend_metrics["server_attempts"], 1.0);
  EXPECT_EQ(server.retry_count(), 1u);
}

TEST(EngineServerTest, PersistentTransientFailureExhaustsAttempts) {
  ServerOptions options;
  options.max_run_attempts = 3;
  options.retry_backoff_seconds = 1e-4;
  EngineServer server(options);
  ASSERT_TRUE(server.CreateGraph("g", ParityGraph()).ok());
  RunRequest request;
  request.algorithm = kPageRank;
  request.backend = kVertexicaBackendId;

  ArmFaultEvery("server.run", 1);  // every attempt fails
  auto result = server.Run("g", request);
  DisarmAllFaults();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsAborted()) << result.status().ToString();
  EXPECT_EQ(server.retry_count(), 2u);  // 3 attempts = 2 retries
  EXPECT_EQ(server.in_flight(), 0);
}

}  // namespace
}  // namespace vertexica
