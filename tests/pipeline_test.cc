// Tests for dataflow pipelines (§3.4, §4.2.2): composition of relational
// operators and SQL graph algorithms.

#include <gtest/gtest.h>

#include <set>

#include "graphgen/generators.h"
#include "graphgen/metadata.h"
#include "pipeline/dataflow.h"
#include "pipeline/nodes.h"
#include "sqlgraph/sql_common.h"

namespace vertexica {
namespace {

Graph SmallSocial() {
  Graph g;
  g.num_vertices = 6;
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  return g;
}

TEST(PipelineTest, SourceAndSelection) {
  Pipeline p;
  const int src = p.AddNode(
      MakeSourceNode("edges", MakeEdgeListTable(SmallSocial())));
  const int sel = p.AddNode(
      MakeSelectionNode(Lt(Col("src"), Lit(int64_t{2}))), {src});
  auto out = p.Run(sel);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->num_rows(), 2);  // edges from 0 and 1
}

TEST(PipelineTest, ResultsAreMemoized) {
  Pipeline p;
  int calls = 0;
  const int src = p.AddNode(MakeFunctionNode(
      "counter", [&calls](const std::vector<Table>&) -> Result<Table> {
        ++calls;
        return Table(Schema({{"x", DataType::kInt64}}));
      }));
  const int a = p.AddNode(MakeSelectionNode(Eq(Col("x"), Lit(int64_t{0}))),
                          {src});
  const int b = p.AddNode(MakeSelectionNode(Ne(Col("x"), Lit(int64_t{0}))),
                          {src});
  ASSERT_TRUE(p.Run(a).ok());
  ASSERT_TRUE(p.Run(b).ok());
  EXPECT_EQ(calls, 1);  // diamond: shared input ran once
  p.Reset();
  ASSERT_TRUE(p.Run(a).ok());
  EXPECT_EQ(calls, 2);
}

TEST(PipelineTest, TimingsRecorded) {
  Pipeline p;
  const int src = p.AddNode(
      MakeSourceNode("edges", MakeEdgeListTable(SmallSocial())));
  const int pr = p.AddNode(MakePageRankNode(3), {src});
  ASSERT_TRUE(p.Run(pr).ok());
  ASSERT_EQ(p.timings().size(), 2u);
  EXPECT_EQ(p.timings()[1].name, "PageRank");
  EXPECT_GE(p.timings()[1].seconds, 0.0);
}

TEST(PipelineTest, PageRankThenHistogram) {
  // §4.2.2: "the users might be interested in looking at the distribution
  // of PageRank values".
  Graph g = GenerateRmat(100, 600, 71);
  Pipeline p;
  const int src = p.AddNode(MakeSourceNode("edges", MakeEdgeListTable(g)));
  const int pr = p.AddNode(MakePageRankNode(5), {src});
  const int hist = p.AddNode(MakeHistogramNode("rank", 8), {pr});
  auto out = p.Run(hist);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_LE(out->num_rows(), 8);
  int64_t total = 0;
  for (int64_t r = 0; r < out->num_rows(); ++r) {
    total += out->ColumnByName("count")->GetInt64(r);
  }
  // Every ranked vertex lands in exactly one bucket.
  const Table ranks = *p.Run(pr);
  EXPECT_EQ(total, ranks.num_rows());
}

TEST(PipelineTest, EdgeTypeFilterThenTriangles) {
  // §4.2.3: "change the edge filter from Family to Classmates".
  Graph g = SmallSocial();
  Table edges = GenerateEdgeMetadata(g, 72);
  Pipeline p;
  const int src = p.AddNode(MakeSourceNode("edges", edges));
  const int family = p.AddNode(
      MakeSelectionNode(Eq(Col("type"), Lit(std::string("family")))), {src});
  const int tri = p.AddNode(MakeTriangleCountingNode(), {family});
  auto out = p.Run(tri);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Result is a valid per-node triangle table (possibly empty).
  EXPECT_TRUE(out->schema().HasField("triangles"));
}

TEST(PipelineTest, JoinGraphResultWithMetadata) {
  // §3.4: combine graph analysis output with node metadata.
  Graph g = GenerateRmat(80, 400, 73);
  Table metadata = GenerateNodeMetadata(g.num_vertices, 74);
  Pipeline p;
  const int src = p.AddNode(MakeSourceNode("edges", MakeEdgeListTable(g)));
  const int pr = p.AddNode(MakePageRankNode(4), {src});
  const int meta = p.AddNode(MakeSourceNode("metadata", metadata));
  const int joined = p.AddNode(MakeJoinNode({"id"}, {"id"}), {pr, meta});
  const int agg = p.AddNode(
      MakeAggregationNode({"u0"}, {{AggOp::kAvg, "rank", "avg_rank"},
                                   {AggOp::kCountStar, "", "n"}}),
      {joined});
  auto out = p.Run(agg);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->num_rows(), 2);  // u0 has cardinality 2
}

TEST(PipelineTest, ComposedAnalysisNearOrImportant) {
  // §4.2.2: "emit nodes which are either very near (path distance less
  // than a threshold) or are relatively very important (PageRank greater
  // than a threshold)".
  Graph g = GenerateRmat(100, 700, 75);
  Pipeline p;
  const int src = p.AddNode(MakeSourceNode("edges", MakeEdgeListTable(g)));
  const int pr = p.AddNode(MakePageRankNode(5), {src});
  const int sp = p.AddNode(MakeShortestPathsNode(0), {src});
  const int joined = p.AddNode(MakeJoinNode({"id"}, {"id"}), {pr, sp});
  const int filtered = p.AddNode(
      MakeSelectionNode(Or(Lt(Col("dist"), Lit(3.0)),
                           Gt(Col("rank"), Lit(0.02)))),
      {joined});
  auto out = p.Run(filtered);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_GT(out->num_rows(), 0);
  EXPECT_LE(out->num_rows(), 100);
}

TEST(PipelineTest, WeakTiesAndStrongOverlapNodes) {
  Graph g;
  g.num_vertices = 5;
  for (int64_t v = 1; v < 5; ++v) g.AddEdge(0, v);
  Pipeline p;
  const int src = p.AddNode(MakeSourceNode("edges", MakeEdgeListTable(g)));
  const int ties = p.AddNode(MakeWeakTiesNode(1), {src});
  const int overlap = p.AddNode(MakeStrongOverlapNode(1), {src});
  auto ties_out = p.Run(ties);
  ASSERT_TRUE(ties_out.ok());
  EXPECT_EQ(ties_out->num_rows(), 1);  // the hub bridges everything
  auto overlap_out = p.Run(overlap);
  ASSERT_TRUE(overlap_out.ok());
  EXPECT_EQ(overlap_out->num_rows(), 6);  // all leaf pairs share the hub
}

TEST(PipelineTest, ConnectedComponentsNode) {
  Graph g;
  g.num_vertices = 5;
  g.AddEdge(0, 1);
  g.AddEdge(3, 4);
  Pipeline p;
  const int src = p.AddNode(MakeSourceNode("edges", MakeEdgeListTable(g)));
  const int cc = p.AddNode(MakeConnectedComponentsNode(), {src});
  auto out = p.Run(cc);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Vertex 2 has no edges, so only 4 vertices appear; two components.
  EXPECT_EQ(out->num_rows(), 4);
  std::set<int64_t> labels(out->ColumnByName("label")->ints().begin(),
                           out->ColumnByName("label")->ints().end());
  EXPECT_EQ(labels, (std::set<int64_t>{0, 3}));
}

TEST(PipelineTest, RandomWalkNode) {
  Graph g = GenerateRmat(60, 300, 76);
  Pipeline p;
  const int src = p.AddNode(MakeSourceNode("edges", MakeEdgeListTable(g)));
  const int rwr = p.AddNode(MakeRandomWalkNode(0, 10, 0.2), {src});
  auto out = p.Run(rwr);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // The source retains at least its restart mass.
  for (int64_t r = 0; r < out->num_rows(); ++r) {
    if (out->ColumnByName("id")->GetInt64(r) == 0) {
      EXPECT_GE(out->ColumnByName("score")->GetDouble(r), 0.18);
    }
  }
}

TEST(PipelineTest, BadInputArityFails) {
  Pipeline p;
  const int join = p.AddNode(MakeJoinNode({"id"}, {"id"}));  // no inputs
  EXPECT_TRUE(p.Run(join).status().IsInvalidArgument());
}

TEST(PipelineTest, UnknownNodeIdFails) {
  Pipeline p;
  EXPECT_TRUE(p.Run(3).status().IsInvalidArgument());
}

}  // namespace
}  // namespace vertexica
