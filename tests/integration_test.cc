// End-to-end integration tests mirroring the demonstration scenarios of
// §4.2: interactive graph analysis, complex (composed) analysis, and
// continuous & time-series analysis.

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/pagerank.h"
#include "algorithms/reference.h"
#include "algorithms/sssp.h"
#include "exec/plan_builder.h"
#include "giraph/bsp_engine.h"
#include "graphgen/datasets.h"
#include "graphgen/generators.h"
#include "graphgen/metadata.h"
#include "pipeline/dataflow.h"
#include "pipeline/nodes.h"
#include "sqlgraph/clustering_coefficient.h"
#include "sqlgraph/sql_common.h"
#include "sqlgraph/sql_pagerank.h"
#include "sqlgraph/sql_shortest_paths.h"
#include "sqlgraph/triangle_count.h"
#include "sqlgraph/weak_ties.h"
#include "temporal/continuous.h"
#include "temporal/versioned_graph.h"

namespace vertexica {
namespace {

// ---------------------------------------------------------------- §4.2.1

TEST(InteractiveAnalysisTest, ClickNodeAskPageRankAndTriangles) {
  // "users can click on a node and ask for its PageRank, or the number of
  // triangles that the node participates in."
  Graph g = MakeDataset(DatasetId::kTwitter, 0.005);
  auto ranks = SqlPageRank(g, 5);
  ASSERT_TRUE(ranks.ok());
  const int64_t node = 3;
  EXPECT_GT((*ranks)[static_cast<size_t>(node)], 0.0);

  auto per_node = SqlPerNodeTriangles(MakeEdgeListTable(g));
  ASSERT_TRUE(per_node.ok());
  auto expect = PerVertexTrianglesReference(g);
  for (int64_t r = 0; r < per_node->num_rows(); ++r) {
    const int64_t id = per_node->ColumnByName("id")->GetInt64(r);
    EXPECT_EQ(per_node->ColumnByName("triangles")->GetInt64(r),
              expect[static_cast<size_t>(id)]);
  }
}

TEST(InteractiveAnalysisTest, ShortestPathBetweenTwoClickedNodes) {
  // "users can click on two nodes and ask for the shortest path between
  // them" — an SSSP from the first, then a lookup of the second.
  Graph g = MakeDataset(DatasetId::kTwitter, 0.005);
  auto dist = SqlShortestPaths(g, /*source=*/0);
  ASSERT_TRUE(dist.ok());
  auto expect = DijkstraReference(g, 0);
  const int64_t target = g.num_vertices / 2;
  EXPECT_DOUBLE_EQ((*dist)[static_cast<size_t>(target)],
                   expect[static_cast<size_t>(target)]);
}

TEST(InteractiveAnalysisTest, ScopeSelectionByMetadataFilter) {
  // "select all edges of type Family" then analyse only that subgraph.
  Graph g = GenerateRmat(200, 1200, 91);
  Table edges = GenerateEdgeMetadata(g, 92);
  auto family = PlanBuilder::Scan(edges)
                    .Filter(Eq(Col("type"), Lit(std::string("family"))))
                    .Execute();
  ASSERT_TRUE(family.ok());
  EXPECT_GT(family->num_rows(), 0);
  EXPECT_LT(family->num_rows(), edges.num_rows());
  // The filtered edge table feeds a graph algorithm directly.
  auto tri = SqlTriangleCount(*family);
  ASSERT_TRUE(tri.ok());
  auto whole = SqlTriangleCount(edges);
  ASSERT_TRUE(whole.ok());
  EXPECT_LE(*tri, *whole);
}

// ---------------------------------------------------------------- §4.2.2

TEST(ComplexAnalysisTest, ImportantBridges) {
  // "find all nodes which act as ties between otherwise disconnected nodes
  // and have PageRank greater than a threshold".
  Graph g = GenerateRmat(150, 600, 93);
  Table edges = MakeEdgeListTable(g);

  Pipeline p;
  const int src = p.AddNode(MakeSourceNode("edges", edges));
  const int ties = p.AddNode(MakeWeakTiesNode(3), {src});
  const int pr = p.AddNode(MakePageRankNode(5), {src});
  const int joined = p.AddNode(MakeJoinNode({"id"}, {"id"}), {ties, pr});
  const int important = p.AddNode(
      MakeSelectionNode(Gt(Col("rank"), Lit(1.0 / 150.0))), {joined});
  auto out = p.Run(important);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Every surviving row is both a bridge and important.
  for (int64_t r = 0; r < out->num_rows(); ++r) {
    EXPECT_GE(out->ColumnByName("open_pairs")->GetInt64(r), 3);
    EXPECT_GT(out->ColumnByName("rank")->GetDouble(r), 1.0 / 150.0);
  }
}

TEST(ComplexAnalysisTest, SsspFromMostClusteredNode) {
  // "compute the single source shortest path with the source node being
  // the node with the maximum local clustering coefficient".
  Graph g = GenerateRmat(120, 800, 94);
  auto seed = SqlMaxClusteringVertex(MakeEdgeListTable(g));
  ASSERT_TRUE(seed.ok());
  auto dist = SqlShortestPaths(g, *seed);
  ASSERT_TRUE(dist.ok());
  EXPECT_DOUBLE_EQ((*dist)[static_cast<size_t>(*seed)], 0.0);
  auto expect = DijkstraReference(g, *seed);
  for (size_t v = 0; v < expect.size(); ++v) {
    EXPECT_DOUBLE_EQ((*dist)[v], expect[v]);
  }
}

TEST(ComplexAnalysisTest, GlobalClusteringCoefficient) {
  // "users can ask for global clustering coefficient (combining triangle
  // counting with weak ties)".
  Graph g = GenerateRmat(100, 700, 95);
  auto global = SqlGlobalClusteringCoefficient(g);
  ASSERT_TRUE(global.ok());
  EXPECT_GE(*global, 0.0);
  EXPECT_LE(*global, 1.0);
}

TEST(ComplexAnalysisTest, CompareWithGiraphToggle) {
  // The GUI's "Compare With Giraph" checkbox: same algorithm, same answer,
  // two engines.
  Graph g = MakeDataset(DatasetId::kTwitter, 0.003);
  Catalog cat;
  RunStats vx_stats;
  auto vx = RunPageRank(&cat, g, 5, 0.85, {}, &vx_stats);
  ASSERT_TRUE(vx.ok());
  PageRankProgram program(5);
  BspEngine giraph(g, &program);
  GiraphStats g_stats;
  ASSERT_TRUE(giraph.Run(&g_stats).ok());
  for (int64_t v = 0; v < g.num_vertices; ++v) {
    EXPECT_NEAR((*vx)[static_cast<size_t>(v)], giraph.value(v), 1e-9);
  }
  EXPECT_GT(vx_stats.total_seconds, 0.0);
  EXPECT_GT(g_stats.compute_seconds, 0.0);
}

// ---------------------------------------------------------------- §4.2.3

TEST(ContinuousAnalysisTest, EdgeFilterChangeChangesResults) {
  // "change the edge filter from 'Family' to 'Classmates', and observe how
  // runtimes and the console output changes."
  Graph g = GenerateRmat(150, 900, 96);
  Table edges = GenerateEdgeMetadata(g, 97);

  auto run_with_filter = [&edges](const std::string& type) -> Result<int64_t> {
    VX_ASSIGN_OR_RETURN(Table filtered, PlanBuilder::Scan(edges)
                                            .Filter(Eq(Col("type"), Lit(type)))
                                            .Execute());
    return SqlTriangleCount(filtered);
  };
  auto family = run_with_filter("family");
  auto classmate = run_with_filter("classmate");
  ASSERT_TRUE(family.ok());
  ASSERT_TRUE(classmate.ok());
  // Different subgraphs — results are both valid and generally different.
  EXPECT_GE(*family, 0);
  EXPECT_GE(*classmate, 0);
}

TEST(ContinuousAnalysisTest, MutationsVisibleToContinuousRun) {
  // "users can also click and modify nodes and edges and observe the
  // impact of change on the graph analysis."
  Catalog cat;
  VersionedGraphStore store(&cat);
  Graph g = GenerateRmat(80, 300, 98);
  ASSERT_TRUE(store.CommitVersion(MakeEdgeListTable(g)).ok());

  ContinuousRunner runner(&store, "pagerank-top1",
                          [](const Table& edges) -> Result<Table> {
                            VX_ASSIGN_OR_RETURN(Graph graph,
                                                GraphFromEdgeTable(edges));
                            VX_ASSIGN_OR_RETURN(auto ranks,
                                                SqlPageRank(graph, 5));
                            Table t(Schema({{"max_rank", DataType::kDouble}}));
                            double best = 0;
                            for (double r : ranks) best = std::max(best, r);
                            VX_RETURN_NOT_OK(t.AppendRow({Value(best)}));
                            return t;
                          });
  ASSERT_TRUE(runner.Poll().ok());

  // Mutate: pile edges into vertex 7 and re-poll.
  Table boost(Schema({{"src", DataType::kInt64},
                      {"dst", DataType::kInt64},
                      {"weight", DataType::kDouble}}));
  for (int64_t v = 0; v < 40; ++v) {
    VX_CHECK_OK(boost.AppendRow({Value(v), Value(int64_t{7}), Value(1.0)}));
  }
  ASSERT_TRUE(store.AddEdges(boost).ok());
  auto ticks = runner.Poll();
  ASSERT_TRUE(ticks.ok());
  ASSERT_EQ(ticks->size(), 1u);
  // Top rank should have increased after concentrating in-links.
  EXPECT_GT((*ticks)[0].result.column(0).GetDouble(0),
            runner.history()[0].result.column(0).GetDouble(0));
}

TEST(TimeSeriesAnalysisTest, PageRankOverFiveVersions) {
  // "how the PageRank of a given node has changed in the last 5 years" —
  // five versions, one per year, rank trajectory of one node.
  Catalog cat;
  VersionedGraphStore store(&cat);
  Graph g = GenerateRmat(60, 200, 99);
  ASSERT_TRUE(store.CommitVersion(MakeEdgeListTable(g)).ok());
  Rng rng(100);
  for (int year = 1; year < 5; ++year) {
    Table extra(Schema({{"src", DataType::kInt64},
                        {"dst", DataType::kInt64},
                        {"weight", DataType::kDouble}}));
    for (int e = 0; e < 30; ++e) {
      VX_CHECK_OK(extra.AppendRow(
          {Value(static_cast<int64_t>(rng.Uniform(60))),
           Value(int64_t{5}),  // year over year, node 5 gains links
           Value(1.0)}));
    }
    ASSERT_TRUE(store.AddEdges(extra).ok());
  }
  std::vector<double> trajectory;
  for (int v = 1; v <= store.latest_version(); ++v) {
    VX_CHECK_OK(store.EdgesAt(v).status());
    Table edges = *store.EdgesAt(v);
    auto graph = GraphFromEdgeTable(edges);
    ASSERT_TRUE(graph.ok());
    graph->num_vertices = 60;
    auto ranks = SqlPageRank(*graph, 6);
    ASSERT_TRUE(ranks.ok());
    trajectory.push_back((*ranks)[5]);
  }
  ASSERT_EQ(trajectory.size(), 5u);
  // Monotone-ish growth: final year clearly above first.
  EXPECT_GT(trajectory.back(), trajectory.front() * 1.5);
}

TEST(TimeSeriesAnalysisTest, WhichNodesCameCloserLastYear) {
  // "which nodes have come closer (smaller path distance) in the last one
  // year" — implemented by ShortestPathDecrease over adjacent versions.
  Catalog cat;
  VersionedGraphStore store(&cat);
  Table v1(Schema({{"src", DataType::kInt64},
                   {"dst", DataType::kInt64},
                   {"weight", DataType::kDouble}}));
  VX_CHECK_OK(v1.AppendRow({Value(int64_t{0}), Value(int64_t{1}), Value(4.0)}));
  VX_CHECK_OK(v1.AppendRow({Value(int64_t{1}), Value(int64_t{2}), Value(4.0)}));
  ASSERT_TRUE(store.CommitVersion(v1).ok());
  Table shortcut(Schema({{"src", DataType::kInt64},
                         {"dst", DataType::kInt64},
                         {"weight", DataType::kDouble}}));
  VX_CHECK_OK(shortcut.AppendRow(
      {Value(int64_t{0}), Value(int64_t{2}), Value(1.0)}));
  ASSERT_TRUE(store.AddEdges(shortcut).ok());
  auto closer = ShortestPathDecrease(store, 1, 2, 0, 1.0);
  ASSERT_TRUE(closer.ok());
  ASSERT_EQ(closer->num_rows(), 1);
  EXPECT_EQ(closer->ColumnByName("id")->GetInt64(0), 2);
}

}  // namespace
}  // namespace vertexica
