// Tests for the Giraph comparator (in-memory BSP engine): correctness
// against references and agreement with the Vertexica engine.

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/connected_components.h"
#include "algorithms/label_propagation.h"
#include "algorithms/pagerank.h"
#include "algorithms/random_walk.h"
#include "algorithms/reference.h"
#include "algorithms/sssp.h"
#include "common/timer.h"
#include "giraph/bsp_engine.h"
#include "graphgen/generators.h"

namespace vertexica {
namespace {

TEST(BspEngineTest, PageRankMatchesReference) {
  Graph g = GenerateRmat(200, 1400, 51);
  PageRankProgram program(8);
  BspEngine engine(g, &program);
  ASSERT_TRUE(engine.Run().ok());
  auto expect = PageRankReference(g, 8);
  for (int64_t v = 0; v < g.num_vertices; ++v) {
    EXPECT_NEAR(engine.value(v), expect[static_cast<size_t>(v)], 1e-9);
  }
}

TEST(BspEngineTest, SsspMatchesDijkstra) {
  Graph g = GenerateRmat(150, 900, 52);
  AssignRandomWeights(&g, 1.0, 7.0, 53);
  ShortestPathProgram program(0);
  BspEngine engine(g, &program);
  GiraphStats stats;
  ASSERT_TRUE(engine.Run(&stats).ok());
  auto expect = DijkstraReference(g, 0);
  for (int64_t v = 0; v < g.num_vertices; ++v) {
    EXPECT_DOUBLE_EQ(engine.value(v), expect[static_cast<size_t>(v)]);
  }
  EXPECT_GT(stats.supersteps, 1);
}

TEST(BspEngineTest, ConnectedComponentsMatchUnionFind) {
  Graph g = GenerateErdosRenyi(200, 220, 54);
  ConnectedComponentsProgram program;
  const Graph bidir = g.WithReverseEdges();
  BspEngine engine(bidir, &program);
  ASSERT_TRUE(engine.Run().ok());
  auto expect = WccReference(g);
  for (int64_t v = 0; v < g.num_vertices; ++v) {
    EXPECT_EQ(static_cast<int64_t>(engine.value(v)),
              expect[static_cast<size_t>(v)]);
  }
}

TEST(BspEngineTest, AgreesWithVertexicaEngine) {
  Graph g = GenerateRmat(128, 700, 55);
  PageRankProgram program(6);
  BspEngine engine(g, &program);
  ASSERT_TRUE(engine.Run().ok());
  Catalog cat;
  auto vertexica_ranks = RunPageRank(&cat, g, 6);
  ASSERT_TRUE(vertexica_ranks.ok());
  for (int64_t v = 0; v < g.num_vertices; ++v) {
    EXPECT_NEAR(engine.value(v), (*vertexica_ranks)[static_cast<size_t>(v)],
                1e-9);
  }
}

TEST(BspEngineTest, CombinerOnOffSameResult) {
  Graph g = GenerateRmat(100, 600, 56);
  PageRankProgram p1(5);
  GiraphOptions no_comb;
  no_comb.use_combiner = false;
  BspEngine with(g, &p1);
  ASSERT_TRUE(with.Run().ok());
  PageRankProgram p2(5);
  BspEngine without(g, &p2, no_comb);
  ASSERT_TRUE(without.Run().ok());
  for (int64_t v = 0; v < g.num_vertices; ++v) {
    EXPECT_NEAR(with.value(v), without.value(v), 1e-9);
  }
}

TEST(BspEngineTest, WorkerCountInvariant) {
  Graph g = GenerateRmat(100, 600, 57);
  std::vector<double> base;
  for (int workers : {1, 2, 8}) {
    PageRankProgram program(5);
    GiraphOptions opts;
    opts.num_workers = workers;
    BspEngine engine(g, &program, opts);
    ASSERT_TRUE(engine.Run().ok());
    auto vals = engine.values();
    if (base.empty()) {
      base = vals;
    } else {
      for (size_t v = 0; v < base.size(); ++v) {
        EXPECT_NEAR(vals[v], base[v], 1e-9);
      }
    }
  }
}

TEST(BspEngineTest, StartupOverheadIsModeledNotSlept) {
  Graph g = GenerateRmat(64, 300, 58);
  PageRankProgram program(3);
  GiraphOptions opts;
  opts.startup_overhead_ms = 60000;  // a minute — must NOT actually sleep
  BspEngine engine(g, &program, opts);
  GiraphStats stats;
  WallTimer wall;
  ASSERT_TRUE(engine.Run(&stats).ok());
  EXPECT_LT(wall.ElapsedSeconds(), 10.0);  // real time stays small
  EXPECT_DOUBLE_EQ(stats.startup_seconds, 60.0);
  EXPECT_NEAR(stats.total_seconds, stats.compute_seconds + 60.0, 1e-9);
}

TEST(BspEngineTest, AggregatorVisibleAfterRun) {
  Graph g = GenerateRmat(64, 300, 59);
  PageRankProgram program(3);
  BspEngine engine(g, &program);
  ASSERT_TRUE(engine.Run().ok());
  auto it = engine.aggregates().find("pagerank_mass");
  ASSERT_NE(it, engine.aggregates().end());
  EXPECT_GT(it->second, 0.0);
}

TEST(BspEngineTest, LabelPropagationMatchesVertexica) {
  Graph g = GenerateRmat(80, 400, 61);
  const Graph bidir = g.WithReverseEdges();
  LabelPropagationProgram program(6);
  BspEngine engine(bidir, &program);
  ASSERT_TRUE(engine.Run().ok());
  Catalog cat;
  auto vx = RunLabelPropagation(&cat, g, 6);
  ASSERT_TRUE(vx.ok());
  for (int64_t v = 0; v < g.num_vertices; ++v) {
    EXPECT_EQ(static_cast<int64_t>(engine.value(v)),
              (*vx)[static_cast<size_t>(v)])
        << "vertex " << v;
  }
}

TEST(BspEngineTest, RandomWalkMatchesVertexica) {
  Graph g = GenerateRmat(90, 500, 62);
  RandomWalkWithRestartProgram program(2, 10, 0.15);
  BspEngine engine(g, &program);
  ASSERT_TRUE(engine.Run().ok());
  Catalog cat;
  auto vx = RunRandomWalkWithRestart(&cat, g, 2, 10, 0.15);
  ASSERT_TRUE(vx.ok());
  for (int64_t v = 0; v < g.num_vertices; ++v) {
    EXPECT_NEAR(engine.value(v), (*vx)[static_cast<size_t>(v)], 1e-9);
  }
}

TEST(BspEngineTest, MaxSuperstepsBounds) {
  Graph g = GenerateRmat(64, 300, 60);
  PageRankProgram program(1000);
  GiraphOptions opts;
  opts.max_supersteps = 4;
  BspEngine engine(g, &program, opts);
  GiraphStats stats;
  ASSERT_TRUE(engine.Run(&stats).ok());
  EXPECT_EQ(stats.supersteps, 4);
}

}  // namespace
}  // namespace vertexica
