// Tests for the transactional graph database baseline: record store,
// chains, properties, WAL, transactions (commit/rollback), traversal, and
// the algorithms implemented over it.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "algorithms/reference.h"
#include "graphdb/gdb_algorithms.h"
#include "graphdb/graph_db.h"
#include "graphdb/traversal.h"
#include "graphgen/generators.h"

namespace vertexica {
namespace {

using graphdb::GraphDb;
using graphdb::PropertyValue;
using graphdb::Transaction;
using graphdb::Wal;
using graphdb::WalEntry;
using graphdb::WalOp;
using graphdb::kWalRecordBytes;

TEST(GraphDbTest, CreateNodesAndRelationships) {
  GraphDb db;
  {
    Transaction tx = db.Begin();
    const int64_t a = tx.CreateNode();
    const int64_t b = tx.CreateNode();
    auto rel = tx.CreateRelationship(a, b, "knows");
    ASSERT_TRUE(rel.ok());
    ASSERT_TRUE(tx.Commit().ok());
  }
  EXPECT_EQ(db.node_count(), 2);
  EXPECT_EQ(db.relationship_count(), 1);
}

TEST(GraphDbTest, RelationshipChainsBothDirections) {
  GraphDb db;
  Transaction tx = db.Begin();
  const int64_t a = tx.CreateNode();
  const int64_t b = tx.CreateNode();
  const int64_t c = tx.CreateNode();
  ASSERT_TRUE(tx.CreateRelationship(a, b, "e").ok());
  ASSERT_TRUE(tx.CreateRelationship(c, a, "e").ok());
  ASSERT_TRUE(tx.Commit().ok());

  // a sees one outgoing (to b) and one incoming (from c).
  int64_t out = 0;
  int64_t in = 0;
  ASSERT_TRUE(db.ForEachRelationship(a, [&](int64_t, int64_t other,
                                            bool outgoing) {
                  if (outgoing) {
                    EXPECT_EQ(other, b);
                    ++out;
                  } else {
                    EXPECT_EQ(other, c);
                    ++in;
                  }
                  return true;
                })
                  .ok());
  EXPECT_EQ(out, 1);
  EXPECT_EQ(in, 1);
  EXPECT_EQ(*db.OutDegree(a), 1);
  EXPECT_EQ(*db.OutDegree(c), 1);
  EXPECT_EQ(*db.OutDegree(b), 0);
}

TEST(GraphDbTest, PropertiesRoundTrip) {
  GraphDb db;
  Transaction tx = db.Begin();
  const int64_t n = tx.CreateNode();
  ASSERT_TRUE(tx.SetNodeProperty(n, "rank", PropertyValue::Double(0.5)).ok());
  ASSERT_TRUE(tx.SetNodeProperty(n, "age", PropertyValue::Int(30)).ok());
  ASSERT_TRUE(tx.SetNodeProperty(n, "rank", PropertyValue::Double(0.7)).ok());
  ASSERT_TRUE(tx.Commit().ok());
  EXPECT_DOUBLE_EQ(db.GetNodeProperty(n, "rank")->d, 0.7);
  EXPECT_EQ(db.GetNodeProperty(n, "age")->i, 30);
  EXPECT_TRUE(db.GetNodeProperty(n, "nope").status().IsNotFound());
}

TEST(GraphDbTest, RollbackUndoesEverything) {
  GraphDb db;
  {
    Transaction tx = db.Begin();
    const int64_t a = tx.CreateNode();
    const int64_t b = tx.CreateNode();
    ASSERT_TRUE(tx.CreateRelationship(a, b, "e").ok());
    ASSERT_TRUE(tx.Commit().ok());
  }
  {
    Transaction tx = db.Begin();
    const int64_t c = tx.CreateNode();
    ASSERT_TRUE(tx.CreateRelationship(0, c, "e").ok());
    ASSERT_TRUE(tx.SetNodeProperty(0, "x", PropertyValue::Int(1)).ok());
    tx.Rollback();
  }
  // Node c unusable, relationship gone, property gone; chain of 0 intact.
  EXPECT_FALSE(db.store().ValidNode(2));
  EXPECT_FALSE(db.store().ValidRel(1));
  EXPECT_TRUE(db.GetNodeProperty(0, "x").status().IsNotFound());
  EXPECT_EQ(*db.OutDegree(0), 1);
}

TEST(GraphDbTest, RollbackRestoresOverwrittenProperty) {
  GraphDb db;
  {
    Transaction tx = db.Begin();
    const int64_t n = tx.CreateNode();
    ASSERT_TRUE(tx.SetNodeProperty(n, "v", PropertyValue::Int(1)).ok());
    ASSERT_TRUE(tx.Commit().ok());
  }
  {
    Transaction tx = db.Begin();
    ASSERT_TRUE(tx.SetNodeProperty(0, "v", PropertyValue::Int(99)).ok());
    tx.Rollback();
  }
  EXPECT_EQ(db.GetNodeProperty(0, "v")->i, 1);
}

TEST(GraphDbTest, ImplicitRollbackOnDestruction) {
  GraphDb db;
  {
    Transaction tx = db.Begin();
    tx.CreateNode();
    // no commit — destructor must roll back and release the lock
  }
  EXPECT_FALSE(db.store().ValidNode(0));
  // Lock released: a new transaction can start.
  Transaction tx2 = db.Begin();
  tx2.CreateNode();
  ASSERT_TRUE(tx2.Commit().ok());
}

TEST(GraphDbTest, DeleteRelationshipUnlinksChains) {
  GraphDb db;
  Transaction tx = db.Begin();
  const int64_t a = tx.CreateNode();
  const int64_t b = tx.CreateNode();
  const int64_t c = tx.CreateNode();
  auto r1 = tx.CreateRelationship(a, b, "e");
  auto r2 = tx.CreateRelationship(a, c, "e");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(tx.DeleteRelationship(*r1).ok());
  ASSERT_TRUE(tx.Commit().ok());
  EXPECT_EQ(*db.OutDegree(a), 1);
  std::set<int64_t> neighbors;
  ASSERT_TRUE(db.ForEachRelationship(a, [&](int64_t, int64_t other, bool) {
                  neighbors.insert(other);
                  return true;
                })
                  .ok());
  EXPECT_EQ(neighbors, std::set<int64_t>{c});
  // b's chain must no longer reference the deleted relationship.
  int64_t b_rels = 0;
  ASSERT_TRUE(db.ForEachRelationship(b, [&](int64_t, int64_t, bool) {
                  ++b_rels;
                  return true;
                })
                  .ok());
  EXPECT_EQ(b_rels, 0);
}

TEST(GraphDbTest, DeleteRollbackRestoresChains) {
  GraphDb db;
  {
    Transaction tx = db.Begin();
    const int64_t a = tx.CreateNode();
    const int64_t b = tx.CreateNode();
    ASSERT_TRUE(tx.CreateRelationship(a, b, "e").ok());
    ASSERT_TRUE(tx.Commit().ok());
  }
  {
    Transaction tx = db.Begin();
    ASSERT_TRUE(tx.DeleteRelationship(0).ok());
    tx.Rollback();
  }
  EXPECT_TRUE(db.store().ValidRel(0));
  EXPECT_EQ(*db.OutDegree(0), 1);
}

TEST(GraphDbTest, DeleteNodeCascades) {
  GraphDb db;
  Transaction tx = db.Begin();
  const int64_t a = tx.CreateNode();
  const int64_t b = tx.CreateNode();
  const int64_t c = tx.CreateNode();
  ASSERT_TRUE(tx.CreateRelationship(a, b, "e").ok());
  ASSERT_TRUE(tx.CreateRelationship(c, a, "e").ok());
  ASSERT_TRUE(tx.CreateRelationship(b, c, "e").ok());
  ASSERT_TRUE(tx.DeleteNode(a).ok());
  ASSERT_TRUE(tx.Commit().ok());

  EXPECT_FALSE(db.store().ValidNode(a));
  EXPECT_FALSE(db.store().ValidRel(0));  // a->b
  EXPECT_FALSE(db.store().ValidRel(1));  // c->a
  EXPECT_TRUE(db.store().ValidRel(2));   // b->c survives
  // Chains of b and c no longer reference a's relationships.
  EXPECT_EQ(*db.OutDegree(b), 1);
  EXPECT_EQ(*db.OutDegree(c), 0);
}

TEST(GraphDbTest, DeleteNodeRollbackRestores) {
  GraphDb db;
  {
    Transaction tx = db.Begin();
    const int64_t a = tx.CreateNode();
    const int64_t b = tx.CreateNode();
    ASSERT_TRUE(tx.CreateRelationship(a, b, "e").ok());
    ASSERT_TRUE(tx.Commit().ok());
  }
  {
    Transaction tx = db.Begin();
    ASSERT_TRUE(tx.DeleteNode(0).ok());
    tx.Rollback();
  }
  EXPECT_TRUE(db.store().ValidNode(0));
  EXPECT_TRUE(db.store().ValidRel(0));
  EXPECT_EQ(*db.OutDegree(0), 1);
}

TEST(GraphDbTest, WalRecordsOperations) {
  GraphDb db;
  {
    Transaction tx = db.Begin();
    const int64_t n = tx.CreateNode();
    ASSERT_TRUE(tx.SetNodeProperty(n, "v", PropertyValue::Int(1)).ok());
    ASSERT_TRUE(tx.Commit().ok());
  }
  const auto& entries = db.wal().entries();
  ASSERT_EQ(entries.size(), 4u);  // begin, create, set, commit
  EXPECT_EQ(entries[0].op, WalOp::kBegin);
  EXPECT_EQ(entries[1].op, WalOp::kCreateNode);
  EXPECT_EQ(entries[2].op, WalOp::kSetProperty);
  EXPECT_EQ(entries[3].op, WalOp::kCommit);
  EXPECT_EQ(db.wal().committed_count(), 1);
}

TEST(GraphDbTest, LoadGraphBulk) {
  Graph g = GenerateRmat(50, 200, 61);
  AssignRandomWeights(&g, 1.0, 5.0, 62);
  GraphDb db;
  ASSERT_TRUE(db.LoadGraph(g).ok());
  EXPECT_EQ(db.node_count(), 50);
  EXPECT_EQ(db.relationship_count(), g.num_edges());
  // Weight of relationship 0 matches the graph.
  EXPECT_DOUBLE_EQ(db.GetRelationshipProperty(0, "weight")->d,
                   g.EdgeWeight(0));
}

TEST(GraphDbTest, AccessCountersTrackLogicalIo) {
  Graph g = GenerateRmat(30, 100, 63);
  GraphDb db;
  ASSERT_TRUE(db.LoadGraph(g).ok());
  db.mutable_store()->ResetAccessCounters();
  ASSERT_TRUE(db.OutDegree(0).ok());
  EXPECT_GT(db.store().node_accesses() + db.store().rel_accesses(), 0);
}

// A path 0-1-2-3 plus a "family" shortcut 0->3 for traversal tests.
void BuildPathDb(GraphDb* db) {
  Transaction tx = db->Begin();
  for (int i = 0; i < 4; ++i) tx.CreateNode();
  ASSERT_TRUE(tx.CreateRelationship(0, 1, "friend").ok());
  ASSERT_TRUE(tx.CreateRelationship(1, 2, "friend").ok());
  ASSERT_TRUE(tx.CreateRelationship(2, 3, "friend").ok());
  ASSERT_TRUE(tx.CreateRelationship(0, 3, "family").ok());
  ASSERT_TRUE(tx.Commit().ok());
}

TEST(TraversalTest, BfsVisitsByDepth) {
  GraphDb db;
  BuildPathDb(&db);
  auto visits = graphdb::Traverse(db, 0);
  ASSERT_TRUE(visits.ok()) << visits.status().ToString();
  ASSERT_EQ(visits->size(), 4u);
  EXPECT_EQ((*visits)[0].node, 0);
  EXPECT_EQ((*visits)[0].depth, 0);
  // BFS: depths are non-decreasing; 1 and 3 are both depth 1 from 0.
  for (size_t i = 1; i < visits->size(); ++i) {
    EXPECT_GE((*visits)[i].depth, (*visits)[i - 1].depth);
  }
}

TEST(TraversalTest, DepthLimit) {
  GraphDb db;
  BuildPathDb(&db);
  graphdb::TraversalOptions opts;
  opts.max_depth = 1;
  opts.direction = graphdb::TraversalOptions::Direction::kOutgoing;
  opts.type_filter = "friend";
  auto visits = graphdb::Traverse(db, 0, opts);
  ASSERT_TRUE(visits.ok());
  // 0 at depth 0 and 1 at depth 1 only (3 is family-typed).
  ASSERT_EQ(visits->size(), 2u);
  EXPECT_EQ((*visits)[1].node, 1);
}

TEST(TraversalTest, DirectionFilter) {
  GraphDb db;
  BuildPathDb(&db);
  graphdb::TraversalOptions opts;
  opts.direction = graphdb::TraversalOptions::Direction::kIncoming;
  auto visits = graphdb::Traverse(db, 3, opts);
  ASSERT_TRUE(visits.ok());
  // Incoming from 3: 2 and 0 (family), then 1, then all.
  EXPECT_EQ(visits->size(), 4u);
}

TEST(TraversalTest, TypeFilterRestrictsReach) {
  GraphDb db;
  BuildPathDb(&db);
  graphdb::TraversalOptions opts;
  opts.type_filter = "family";
  auto visits = graphdb::Traverse(db, 0, opts);
  ASSERT_TRUE(visits.ok());
  ASSERT_EQ(visits->size(), 2u);  // 0 and 3 only
  EXPECT_EQ((*visits)[1].node, 3);
}

TEST(TraversalTest, KHopNeighborhood) {
  GraphDb db;
  BuildPathDb(&db);
  auto one_hop = graphdb::KHopNeighborhood(db, 1, 1);
  ASSERT_TRUE(one_hop.ok());
  std::set<int64_t> nodes(one_hop->begin(), one_hop->end());
  EXPECT_EQ(nodes, (std::set<int64_t>{0, 2}));
  auto two_hop = graphdb::KHopNeighborhood(db, 1, 2);
  ASSERT_TRUE(two_hop.ok());
  EXPECT_EQ(two_hop->size(), 3u);
}

TEST(TraversalTest, BadStartFails) {
  GraphDb db;
  BuildPathDb(&db);
  EXPECT_TRUE(graphdb::Traverse(db, 99).status().IsInvalidArgument());
}

TEST(TraversalTest, RelationshipTypeAccessor) {
  GraphDb db;
  BuildPathDb(&db);
  EXPECT_EQ(*db.RelationshipType(0), "friend");
  EXPECT_EQ(*db.RelationshipType(3), "family");
  EXPECT_TRUE(db.RelationshipType(99).status().IsInvalidArgument());
  EXPECT_EQ(db.LookupType("friend"), 0);
  EXPECT_EQ(db.LookupType("nope"), -1);
}

TEST(GdbAlgorithmsTest, PageRankMatchesReference) {
  Graph g = GenerateRmat(80, 400, 64);
  GraphDb db;
  ASSERT_TRUE(db.LoadGraph(g).ok());
  graphdb::GdbRunStats stats;
  auto ranks = GdbPageRank(&db, 6, 0.85, &stats);
  ASSERT_TRUE(ranks.ok()) << ranks.status().ToString();
  auto expect = PageRankReference(g, 6);
  for (size_t v = 0; v < expect.size(); ++v) {
    EXPECT_NEAR((*ranks)[v], expect[v], 1e-9);
  }
  EXPECT_GT(stats.prop_accesses, 0);
}

TEST(GdbAlgorithmsTest, ShortestPathsMatchDijkstra) {
  Graph g = GenerateRmat(80, 400, 65);
  AssignRandomWeights(&g, 1.0, 4.0, 66);
  GraphDb db;
  ASSERT_TRUE(db.LoadGraph(g).ok());
  auto dist = GdbShortestPaths(&db, 0);
  ASSERT_TRUE(dist.ok());
  auto expect = DijkstraReference(g, 0);
  for (size_t v = 0; v < expect.size(); ++v) {
    EXPECT_DOUBLE_EQ((*dist)[v], expect[v]);
  }
}

TEST(GdbAlgorithmsTest, ConnectedComponentsMatchUnionFind) {
  Graph g = GenerateErdosRenyi(100, 110, 67);
  GraphDb db;
  ASSERT_TRUE(db.LoadGraph(g).ok());
  auto labels = GdbConnectedComponents(&db);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ(*labels, WccReference(g));
}

// ------------------------------------------------------ WAL durability

/// A WAL with a few committed transactions' worth of entries.
Wal SampleWal() {
  Wal wal;
  for (int64_t tx = 1; tx <= 3; ++tx) {
    wal.Append({tx, WalOp::kBegin, -1, -1, 0.0});
    wal.Append({tx, WalOp::kCreateNode, tx * 10, -1, 0.0});
    wal.Append({tx, WalOp::kSetProperty, tx * 10, 2, 0.5 * tx});
    wal.Append({tx, WalOp::kCommit, -1, -1, 0.0});
  }
  return wal;
}

TEST(WalReplayTest, SerializeReplayRoundTrip) {
  const Wal wal = SampleWal();
  const std::string bytes = wal.Serialize();
  EXPECT_EQ(bytes.size(), static_cast<size_t>(wal.size()) * kWalRecordBytes);

  int64_t dropped = -1;
  auto replayed = Wal::Replay(bytes, &dropped);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(dropped, 0);
  ASSERT_EQ(replayed->size(), wal.size());
  EXPECT_EQ(replayed->committed_count(), 3);
  for (size_t i = 0; i < wal.entries().size(); ++i) {
    const WalEntry& a = wal.entries()[i];
    const WalEntry& b = replayed->entries()[i];
    EXPECT_EQ(a.txid, b.txid) << "record " << i;
    EXPECT_EQ(a.op, b.op) << "record " << i;
    EXPECT_EQ(a.entity, b.entity) << "record " << i;
    EXPECT_EQ(a.key, b.key) << "record " << i;
    EXPECT_EQ(a.payload, b.payload) << "record " << i;
  }
}

TEST(WalReplayTest, EmptyLogRoundTrips) {
  int64_t dropped = -1;
  auto replayed = Wal::Replay("", &dropped);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->size(), 0);
  EXPECT_EQ(dropped, 0);
}

TEST(WalReplayTest, TruncatedTailIsDroppedWithWarning) {
  const Wal wal = SampleWal();
  std::string bytes = wal.Serialize();
  // A crash mid-append leaves a partial final record on disk.
  bytes.resize(bytes.size() - 10);
  int64_t dropped = 0;
  auto replayed = Wal::Replay(bytes, &dropped);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(replayed->size(), wal.size() - 1);
  EXPECT_EQ(dropped, static_cast<int64_t>(kWalRecordBytes - 10));
}

TEST(WalReplayTest, ChecksumDamagedFinalRecordIsDropped) {
  const Wal wal = SampleWal();
  std::string bytes = wal.Serialize();
  // Flip a payload byte of the last record; its recorded CRC no longer
  // matches — the torn-record signature of a crash mid-write.
  bytes[bytes.size() - kWalRecordBytes + 3] ^= 0x40;
  int64_t dropped = 0;
  auto replayed = Wal::Replay(bytes, &dropped);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(replayed->size(), wal.size() - 1);
  EXPECT_EQ(dropped, static_cast<int64_t>(kWalRecordBytes));
  EXPECT_EQ(replayed->committed_count(), 2);  // tx 3's commit was torn
}

TEST(WalReplayTest, MidLogCorruptionIsAnError) {
  const Wal wal = SampleWal();
  std::string bytes = wal.Serialize();
  bytes[kWalRecordBytes + 5] ^= 0x01;  // damage record 1 of 12
  const auto replayed = Wal::Replay(bytes);
  ASSERT_FALSE(replayed.ok());
  EXPECT_TRUE(replayed.status().IsIoError());
  EXPECT_NE(replayed.status().ToString().find("record 1"), std::string::npos)
      << replayed.status().ToString();
}

TEST(WalReplayTest, LiveDatabaseWalSurvivesRoundTrip) {
  GraphDb db;
  {
    Transaction tx = db.Begin();
    const int64_t n = tx.CreateNode();
    ASSERT_TRUE(tx.SetNodeProperty(n, "v", PropertyValue::Int(1)).ok());
    ASSERT_TRUE(tx.Commit().ok());
  }
  auto replayed = Wal::Replay(db.wal().Serialize());
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->size(), db.wal().size());
  EXPECT_EQ(replayed->committed_count(), db.wal().committed_count());
}

}  // namespace
}  // namespace vertexica
