// Property-based cross-system sweeps: on randomized graphs, all four
// engines (Vertexica vertex-centric, Vertexica SQL, the Giraph BSP
// comparator, the GraphDB comparator) must agree with the textbook
// reference — the central correctness invariant behind Figure 2's claim
// that the systems compute the same answers at different speeds.

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/connected_components.h"
#include "algorithms/pagerank.h"
#include "algorithms/reference.h"
#include "algorithms/sssp.h"
#include "giraph/bsp_engine.h"
#include "graphdb/gdb_algorithms.h"
#include "graphgen/generators.h"
#include "sqlgraph/sql_connected_components.h"
#include "sqlgraph/sql_pagerank.h"
#include "sqlgraph/sql_shortest_paths.h"
#include "sqlgraph/triangle_count.h"

namespace vertexica {
namespace {

struct GraphCase {
  const char* kind;
  int64_t n;
  int64_t m;
  uint64_t seed;
};

std::ostream& operator<<(std::ostream& os, const GraphCase& c) {
  return os << c.kind << "_n" << c.n << "_m" << c.m << "_s" << c.seed;
}

Graph MakeCase(const GraphCase& c) {
  if (std::string(c.kind) == "rmat") {
    return GenerateRmat(c.n, c.m, c.seed);
  }
  if (std::string(c.kind) == "er") {
    return GenerateErdosRenyi(c.n, c.m, c.seed);
  }
  return GenerateBarabasiAlbert(c.n, std::max<int64_t>(1, c.m / c.n), c.seed);
}

class CrossSystemTest : public ::testing::TestWithParam<GraphCase> {};

TEST_P(CrossSystemTest, PageRankAgreesEverywhere) {
  Graph g = MakeCase(GetParam());
  constexpr int kIters = 6;
  const auto expect = PageRankReference(g, kIters);

  Catalog cat;
  auto vx = RunPageRank(&cat, g, kIters);
  ASSERT_TRUE(vx.ok()) << vx.status().ToString();

  auto sql = SqlPageRank(g, kIters);
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();

  PageRankProgram program(kIters);
  BspEngine giraph(g, &program);
  ASSERT_TRUE(giraph.Run().ok());

  graphdb::GraphDb db;
  ASSERT_TRUE(db.LoadGraph(g).ok());
  auto gdb = graphdb::GdbPageRank(&db, kIters);
  ASSERT_TRUE(gdb.ok()) << gdb.status().ToString();

  for (int64_t v = 0; v < g.num_vertices; ++v) {
    const auto sv = static_cast<size_t>(v);
    EXPECT_NEAR((*vx)[sv], expect[sv], 1e-9) << "vertexica @" << v;
    EXPECT_NEAR((*sql)[sv], expect[sv], 1e-9) << "sql @" << v;
    EXPECT_NEAR(giraph.value(v), expect[sv], 1e-9) << "giraph @" << v;
    EXPECT_NEAR((*gdb)[sv], expect[sv], 1e-9) << "graphdb @" << v;
  }
}

TEST_P(CrossSystemTest, ShortestPathsAgreeEverywhere) {
  Graph g = MakeCase(GetParam());
  AssignRandomWeights(&g, 1.0, 8.0, GetParam().seed ^ 0x55);
  const auto expect = DijkstraReference(g, 0);

  Catalog cat;
  auto vx = RunShortestPaths(&cat, g, 0);
  ASSERT_TRUE(vx.ok()) << vx.status().ToString();

  auto sql = SqlShortestPaths(g, 0);
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();

  ShortestPathProgram program(0);
  BspEngine giraph(g, &program);
  ASSERT_TRUE(giraph.Run().ok());

  graphdb::GraphDb db;
  ASSERT_TRUE(db.LoadGraph(g).ok());
  auto gdb = graphdb::GdbShortestPaths(&db, 0);
  ASSERT_TRUE(gdb.ok());

  for (int64_t v = 0; v < g.num_vertices; ++v) {
    const auto sv = static_cast<size_t>(v);
    EXPECT_DOUBLE_EQ((*vx)[sv], expect[sv]) << "vertexica @" << v;
    EXPECT_DOUBLE_EQ((*sql)[sv], expect[sv]) << "sql @" << v;
    EXPECT_DOUBLE_EQ(giraph.value(v), expect[sv]) << "giraph @" << v;
    EXPECT_DOUBLE_EQ((*gdb)[sv], expect[sv]) << "graphdb @" << v;
  }
}

TEST_P(CrossSystemTest, ConnectedComponentsAgreeEverywhere) {
  Graph g = MakeCase(GetParam());
  const auto expect = WccReference(g);

  Catalog cat;
  auto vx = RunConnectedComponents(&cat, g);
  ASSERT_TRUE(vx.ok()) << vx.status().ToString();
  EXPECT_EQ(*vx, expect);

  auto sql = SqlConnectedComponents(g);
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  EXPECT_EQ(*sql, expect);

  ConnectedComponentsProgram program;
  const Graph bidir = g.WithReverseEdges();
  BspEngine giraph(bidir, &program);
  ASSERT_TRUE(giraph.Run().ok());
  for (int64_t v = 0; v < g.num_vertices; ++v) {
    EXPECT_EQ(static_cast<int64_t>(giraph.value(v)),
              expect[static_cast<size_t>(v)]);
  }

  graphdb::GraphDb db;
  ASSERT_TRUE(db.LoadGraph(g).ok());
  auto gdb = graphdb::GdbConnectedComponents(&db);
  ASSERT_TRUE(gdb.ok());
  EXPECT_EQ(*gdb, expect);
}

TEST_P(CrossSystemTest, TriangleCountMatchesReference) {
  Graph g = MakeCase(GetParam());
  auto sql = SqlTriangleCount(g);
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  EXPECT_EQ(*sql, TriangleCountReference(g));
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, CrossSystemTest,
    ::testing::Values(GraphCase{"rmat", 60, 300, 1},
                      GraphCase{"rmat", 120, 900, 2},
                      GraphCase{"rmat", 250, 1200, 3},
                      GraphCase{"er", 80, 200, 4},
                      GraphCase{"er", 150, 1500, 5},
                      GraphCase{"ba", 100, 300, 6},
                      GraphCase{"ba", 200, 1000, 7}),
    [](const ::testing::TestParamInfo<GraphCase>& param_info) {
      std::ostringstream os;
      os << param_info.param;
      return os.str();
    });

/// Invariant sweeps on the Vertexica engine configuration space.
struct ConfigCase {
  bool use_union;
  bool use_combiner;
  double update_threshold;
  int workers;
  int partitions;
};

class VertexicaConfigTest : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(VertexicaConfigTest, AllConfigsComputeIdenticalPageRank) {
  const ConfigCase& c = GetParam();
  Graph g = GenerateRmat(90, 500, 99);
  VertexicaOptions opts;
  opts.use_union_input = c.use_union;
  opts.use_combiner = c.use_combiner;
  opts.update_threshold = c.update_threshold;
  opts.num_workers = c.workers;
  opts.num_partitions = c.partitions;
  Catalog cat;
  auto ranks = RunPageRank(&cat, g, 5, 0.85, opts);
  ASSERT_TRUE(ranks.ok()) << ranks.status().ToString();
  const auto expect = PageRankReference(g, 5);
  for (size_t v = 0; v < expect.size(); ++v) {
    EXPECT_NEAR((*ranks)[v], expect[v], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, VertexicaConfigTest,
    ::testing::Values(ConfigCase{true, true, 0.1, 0, 0},
                      ConfigCase{false, true, 0.1, 0, 0},
                      ConfigCase{true, false, 0.1, 0, 0},
                      ConfigCase{false, false, 0.1, 2, 4},
                      ConfigCase{true, true, 0.0, 1, 1},
                      ConfigCase{true, true, 1.1, 4, 16},
                      ConfigCase{false, false, 0.0, 3, 2},
                      ConfigCase{true, false, 1.1, 2, 32}),
    [](const ::testing::TestParamInfo<ConfigCase>& param_info) {
      const ConfigCase& c = param_info.param;
      std::ostringstream os;
      os << (c.use_union ? "union" : "join") << "_"
         << (c.use_combiner ? "comb" : "nocomb") << "_t"
         << static_cast<int>(c.update_threshold * 10) << "_w" << c.workers
         << "_p" << c.partitions;
      return os.str();
    });

}  // namespace
}  // namespace vertexica
