// Unit tests for the common substrate: Status/Result, thread pool, RNG,
// hashing, string utilities.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string_view>
#include <thread>

#include "common/cache_sizing.h"
#include "common/cancel.h"
#include "common/crc32.h"
#include "common/fault_injection.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/threadpool.h"

namespace vertexica {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad column");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad column");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad column");
}

TEST(StatusTest, AllFactoryPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::TypeError("x").IsTypeError());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
}

TEST(StatusTest, CopyPreservesState) {
  Status a = Status::NotFound("missing");
  Status b = a;
  EXPECT_TRUE(b.IsNotFound());
  EXPECT_EQ(b.message(), "missing");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x * 2;
}

Status UseParse(int x, int* out) {
  VX_ASSIGN_OR_RETURN(*out, ParsePositive(x));
  return Status::OK();
}

TEST(ResultTest, ValuePath) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, ErrorPath) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseParse(5, &out).ok());
  EXPECT_EQ(out, 10);
  EXPECT_TRUE(UseParse(-5, &out).IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).MoveValueUnsafe();
  EXPECT_EQ(*v, 7);
}

TEST(ThreadPoolTest, SubmitReturnsFutures) {
  ThreadPool pool(4);
  auto f1 = pool.Submit([] { return 1 + 1; });
  auto f2 = pool.Submit([] { return std::string("hi"); });
  EXPECT_EQ(f1.get(), 2);
  EXPECT_EQ(f2.get(), "hi");
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  int count = 0;
  pool.ParallelFor(0, [&](size_t) { ++count; });
  EXPECT_EQ(count, 0);
  pool.ParallelFor(1, [&](size_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(BarrierTest, SynchronizesPhases) {
  constexpr int kThreads = 4;
  Barrier barrier(kThreads);
  std::atomic<int> phase0{0};
  std::atomic<int> phase1_saw_full_phase0{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      phase0++;
      barrier.ArriveAndWait();
      if (phase0.load() == kThreads) phase1_saw_full_phase0++;
      barrier.ArriveAndWait();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(phase1_saw_full_phase0.load(), kThreads);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, NextStringLowercase) {
  Rng rng(3);
  const std::string s = rng.NextString(64);
  EXPECT_EQ(s.size(), 64u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(ZipfTest, SkewsTowardSmallValues) {
  Rng rng(5);
  ZipfDistribution zipf(1000, 1.2);
  int64_t small = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = zipf.Sample(&rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 1000u);
    if (v <= 10) ++small;
  }
  // With s=1.2, the top-10 values hold well over a third of the mass.
  EXPECT_GT(small, n / 3);
}

TEST(ZipfTest, ExponentZeroIsUniformish) {
  Rng rng(5);
  ZipfDistribution zipf(10, 0.0);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 10000; ++i) counts[zipf.Sample(&rng)]++;
  for (int k = 1; k <= 10; ++k) EXPECT_GT(counts[k], 700);
}

TEST(HashTest, Int64HashSpreads) {
  std::set<uint64_t> hashes;
  for (int64_t i = 0; i < 1000; ++i) {
    hashes.insert(HashInt64(static_cast<uint64_t>(i)));
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(HashTest, StringHashDistinguishes) {
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_EQ(HashString("abc"), HashString("abc"));
}

TEST(Int64HashMapTest, InsertFindGrow) {
  Int64HashMap<int> map;
  for (int64_t i = -500; i < 500; ++i) {
    map.GetOrInsert(i, static_cast<int>(i * 3));
  }
  EXPECT_EQ(map.size(), 1000u);
  for (int64_t i = -500; i < 500; ++i) {
    const int* v = map.Find(i);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, static_cast<int>(i * 3));
  }
  EXPECT_EQ(map.Find(10000), nullptr);
}

TEST(Int64HashMapTest, GetOrInsertReturnsExisting) {
  Int64HashMap<int> map;
  map.GetOrInsert(7, 1);
  int& v = map.GetOrInsert(7, 99);
  EXPECT_EQ(v, 1);
  v = 2;
  EXPECT_EQ(*map.Find(7), 2);
}

TEST(Int64HashMapTest, ForEachVisitsAll) {
  Int64HashMap<int64_t> map;
  for (int64_t i = 0; i < 100; ++i) map.GetOrInsert(i, i);
  int64_t sum = 0;
  map.ForEach([&](int64_t k, int64_t& v) { sum += k + v; });
  EXPECT_EQ(sum, 2 * (99 * 100 / 2));
}

TEST(Int64HashMapTest, ClearEmpties) {
  Int64HashMap<int> map;
  map.GetOrInsert(1, 1);
  map.Clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(1), nullptr);
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("vertex_table", "vertex"));
  EXPECT_FALSE(StartsWith("vert", "vertex"));
}

TEST(StringUtilTest, StringFormat) {
  EXPECT_EQ(StringFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StringFormat("%.2f", 3.14159), "3.14");
}

// ------------------------------------------------------------------ crc32

TEST(Crc32Test, KnownVectors) {
  // The canonical CRC-32 check value.
  EXPECT_EQ(Crc32(std::string_view("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(std::string_view("")), 0u);
  EXPECT_NE(Crc32(std::string_view("a")), Crc32(std::string_view("b")));
}

TEST(Crc32Test, SeedChainingEqualsOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32(data);
  const uint32_t part = Crc32(data.data() + 10, data.size() - 10,
                              Crc32(data.data(), 10));
  EXPECT_EQ(part, whole);
}

// ------------------------------------------------------------ CancelToken

TEST(CancelTokenTest, NullTokenNeverFires) {
  CancelToken token;
  EXPECT_TRUE(token.null());
  EXPECT_FALSE(token.ShouldStop());
  EXPECT_TRUE(token.Check().ok());
  token.Cancel();  // no-op, not a crash
  EXPECT_TRUE(token.Check().ok());
  std::chrono::steady_clock::time_point unused;
  EXPECT_FALSE(token.deadline(&unused));
}

TEST(CancelTokenTest, CancelReachesEveryCopy) {
  CancelToken token = CancelToken::Make();
  CancelToken copy = token;
  EXPECT_TRUE(copy.Check().ok());
  token.Cancel();
  EXPECT_TRUE(copy.ShouldStop());
  EXPECT_TRUE(copy.Check().IsCancelled());
}

TEST(CancelTokenTest, DeadlineExpires) {
  CancelToken token = CancelToken().WithDeadlineAfter(0.0);
  EXPECT_TRUE(token.Check().IsDeadlineExceeded());
  std::chrono::steady_clock::time_point deadline;
  EXPECT_TRUE(token.deadline(&deadline));

  CancelToken far = CancelToken().WithDeadlineAfter(3600.0);
  EXPECT_TRUE(far.Check().ok());
}

TEST(CancelTokenTest, ChildObservesAncestorCancellation) {
  CancelToken parent = CancelToken::Make();
  CancelToken child = parent.WithDeadlineAfter(3600.0);
  EXPECT_TRUE(child.Check().ok());
  parent.Cancel();
  // Cancellation wins over the (distant) deadline and crosses the chain.
  EXPECT_TRUE(child.Check().IsCancelled());
  // The parent itself stays deadline-free.
  std::chrono::steady_clock::time_point deadline;
  EXPECT_FALSE(parent.deadline(&deadline));
  EXPECT_TRUE(child.deadline(&deadline));
}

TEST(CancelTokenTest, TightestDeadlineInChainWins) {
  CancelToken near = CancelToken().WithDeadlineAfter(1.0);
  CancelToken far = near.WithDeadlineAfter(3600.0);
  std::chrono::steady_clock::time_point tight, parent_deadline;
  ASSERT_TRUE(far.deadline(&tight));
  ASSERT_TRUE(near.deadline(&parent_deadline));
  EXPECT_EQ(tight, parent_deadline);  // the 1s ancestor bounds the child
}

TEST(CancelTokenTest, AmbientScopeInstallsAndRestores) {
  EXPECT_TRUE(AmbientCancelToken().null());
  CancelToken token = CancelToken::Make();
  {
    ScopedCancelToken scope(token);
    EXPECT_EQ(AmbientCancelToken(), token);
    token.Cancel();
    EXPECT_TRUE(CheckAmbientCancel().IsCancelled());
  }
  EXPECT_TRUE(AmbientCancelToken().null());
  EXPECT_TRUE(CheckAmbientCancel().ok());
}

// -------------------------------------------------------- fault injection

namespace {
Status HitSite(const char* site) {
  VX_FAULT_POINT(site);
  return Status::OK();
}
}  // namespace

TEST(FaultInjectionTest, DisarmedIsANoOp) {
  DisarmAllFaults();
  EXPECT_FALSE(FaultInjectionArmed());
  EXPECT_TRUE(HitSite("test.nosite").ok());
  EXPECT_EQ(FaultHits("test.nosite"), 0);  // hits only counted while armed
}

TEST(FaultInjectionTest, NthHitFiresDeterministically) {
  ArmFault("test.site", 3);
  EXPECT_TRUE(FaultInjectionArmed());
  EXPECT_TRUE(HitSite("test.site").ok());
  EXPECT_TRUE(HitSite("test.site").ok());
  const Status fired = HitSite("test.site");
  EXPECT_TRUE(fired.IsAborted()) << fired.ToString();
  EXPECT_NE(fired.ToString().find("test.site"), std::string::npos);
  EXPECT_TRUE(HitSite("test.site").ok());  // one-shot: only the 3rd hit
  EXPECT_EQ(FaultHits("test.site"), 4);
  // An unrelated site armed at the same time is unaffected.
  EXPECT_TRUE(HitSite("test.other").ok());
  DisarmAllFaults();
  EXPECT_FALSE(FaultInjectionArmed());
}

TEST(FaultInjectionTest, EveryNthIsADeterministicFailureRate) {
  ArmFaultEvery("test.periodic", 3);
  int failures = 0;
  for (int i = 0; i < 9; ++i) {
    if (!HitSite("test.periodic").ok()) ++failures;
  }
  EXPECT_EQ(failures, 3);  // hits 3, 6, 9
  DisarmAllFaults();
}

TEST(FaultInjectionTest, SpecParsing) {
  ASSERT_TRUE(
      ArmFaultsFromSpec("a.one=1,b.two=%5:error,c.three=2:crash").ok());
  EXPECT_EQ(ArmedFaultSites(),
            (std::vector<std::string>{"a.one", "b.two", "c.three"}));
  DisarmAllFaults();

  // Malformed specs are rejected without arming anything.
  EXPECT_FALSE(ArmFaultsFromSpec("a.one").ok());
  EXPECT_FALSE(ArmFaultsFromSpec("a.one=0").ok());
  EXPECT_FALSE(ArmFaultsFromSpec("a.one=x").ok());
  EXPECT_FALSE(ArmFaultsFromSpec("a.one=1:explode").ok());
  EXPECT_FALSE(ArmFaultsFromSpec("=1").ok());
  EXPECT_FALSE(FaultInjectionArmed());
}

TEST(FaultInjectionTest, RearmResetsHitCount) {
  ArmFault("test.rearm", 2);
  EXPECT_TRUE(HitSite("test.rearm").ok());
  ArmFault("test.rearm", 2);  // reset: the next hit is #1 again
  EXPECT_TRUE(HitSite("test.rearm").ok());
  EXPECT_FALSE(HitSite("test.rearm").ok());
  DisarmAllFaults();
}

TEST(CacheSizingTest, PartitionCountScalesWithWorkingSet) {
  // One L2-sized budget per partition: below the budget → 1 partition.
  EXPECT_EQ(CacheSizedPartitionCount(0, 48, 64), 1);
  EXPECT_EQ(CacheSizedPartitionCount(1000, 48, 64), 1);
  // Exactly three partitions' worth of working set (floor division).
  const int64_t rows_3_parts = kCachePartitionBytes * 3 / 48;
  EXPECT_EQ(CacheSizedPartitionCount(rows_3_parts, 48, 64), 3);
  // Clamped to the caller's maximum, however large the build is.
  EXPECT_EQ(CacheSizedPartitionCount(int64_t{1} << 40, 48, 64), 64);
  EXPECT_EQ(CacheSizedPartitionCount(int64_t{1} << 40, 48, 16), 16);
}

TEST(CacheSizingTest, DegenerateBytesPerRowStaysValid) {
  // bytes_per_row <= 0 is treated as 1, never a divide-by-zero or a
  // zero-partition result.
  EXPECT_EQ(CacheSizedPartitionCount(100, 0, 64), 1);
  EXPECT_EQ(CacheSizedPartitionCount(100, -5, 64), 1);
  EXPECT_GE(CacheSizedPartitionCount(int64_t{1} << 30, 0, 64), 1);
}

TEST(CacheSizingTest, VertexBatchConstantIsNotDerived) {
  // The order-defining count is a constant of the dataflow; this pin keeps
  // an accidental "tune it" change from silently reordering results.
  EXPECT_EQ(kVertexBatchPartitions, 64);
}

}  // namespace
}  // namespace vertexica
