// Tests for the hand-written SQL graph algorithms (§3.1–3.2), validated
// against the vertex-centric engine and the textbook references.

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/reference.h"
#include "graphgen/generators.h"
#include "sqlgraph/clustering_coefficient.h"
#include "sqlgraph/sql_common.h"
#include "sqlgraph/sql_connected_components.h"
#include "sqlgraph/sql_pagerank.h"
#include "sqlgraph/sql_shortest_paths.h"
#include "sqlgraph/strong_overlap.h"
#include "sqlgraph/triangle_count.h"
#include "sqlgraph/weak_ties.h"

namespace vertexica {
namespace {

Graph TriangleWithTail() {
  Graph g;
  g.num_vertices = 5;
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  return g;
}

TEST(SqlCommonTest, MakeTablesShapes) {
  Graph g = TriangleWithTail();
  Table v = MakeVertexListTable(g);
  EXPECT_EQ(v.num_rows(), 5);
  Table e = MakeEdgeListTable(g);
  EXPECT_EQ(e.num_rows(), 6);
  EXPECT_TRUE(e.schema().HasField("weight"));
}

TEST(SqlCommonTest, UndirectedAndOriented) {
  Graph g;
  g.num_vertices = 3;
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);  // duplicate reversed
  g.AddEdge(1, 1);  // self loop dropped
  g.AddEdge(2, 1);
  auto und = UndirectedEdges(MakeEdgeListTable(g));
  ASSERT_TRUE(und.ok());
  EXPECT_EQ(und->num_rows(), 4);  // {0-1,1-0,1-2,2-1}
  auto oriented = OrientedEdges(MakeEdgeListTable(g));
  ASSERT_TRUE(oriented.ok());
  EXPECT_EQ(oriented->num_rows(), 2);  // {0<1, 1<2}
}

TEST(SqlCommonTest, GraphFromEdgeTableRoundTrip) {
  Graph g = GenerateRmat(64, 300, 3);
  AssignRandomWeights(&g, 1.0, 3.0, 4);
  auto back = GraphFromEdgeTable(MakeEdgeListTable(g));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_edges(), g.num_edges());
  EXPECT_EQ(back->src, g.src);
  EXPECT_EQ(back->weight, g.weight);
}

TEST(SqlPageRankTest, MatchesReference) {
  Graph g = GenerateRmat(150, 900, 41);
  auto sql = SqlPageRank(g, 8);
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  auto expect = PageRankReference(g, 8);
  ASSERT_EQ(sql->size(), expect.size());
  for (size_t v = 0; v < expect.size(); ++v) {
    EXPECT_NEAR((*sql)[v], expect[v], 1e-9) << "vertex " << v;
  }
}

TEST(SqlPageRankTest, RanksSumToAboutOne) {
  Graph g;
  g.num_vertices = 4;
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 0);
  auto sql = SqlPageRank(g, 20);
  ASSERT_TRUE(sql.ok());
  double sum = 0;
  for (double r : *sql) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(SqlPageRankTest, EmptyGraph) {
  Graph g;
  g.num_vertices = 0;
  Table v(Schema({{"id", DataType::kInt64}}));
  Table e(Schema({{"src", DataType::kInt64},
                  {"dst", DataType::kInt64},
                  {"weight", DataType::kDouble}}));
  auto rank = SqlPageRank(v, e, 3);
  ASSERT_TRUE(rank.ok());
  EXPECT_EQ(rank->num_rows(), 0);
}

TEST(SqlShortestPathsTest, MatchesDijkstra) {
  Graph g = GenerateRmat(120, 700, 42);
  AssignRandomWeights(&g, 1.0, 9.0, 43);
  auto sql = SqlShortestPaths(g, 0);
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  auto expect = DijkstraReference(g, 0);
  ASSERT_EQ(sql->size(), expect.size());
  for (size_t v = 0; v < expect.size(); ++v) {
    EXPECT_DOUBLE_EQ((*sql)[v], expect[v]) << "vertex " << v;
  }
}

TEST(SqlShortestPathsTest, UnreachableIsInfinity) {
  Graph g;
  g.num_vertices = 3;
  g.AddEdge(0, 1, 2.0);
  auto sql = SqlShortestPaths(g, 0);
  ASSERT_TRUE(sql.ok());
  EXPECT_DOUBLE_EQ((*sql)[1], 2.0);
  EXPECT_TRUE(std::isinf((*sql)[2]));
}

TEST(SqlConnectedComponentsTest, MatchesUnionFind) {
  Graph g = GenerateErdosRenyi(200, 220, 46);  // sparse => many components
  auto labels = SqlConnectedComponents(g);
  ASSERT_TRUE(labels.ok()) << labels.status().ToString();
  EXPECT_EQ(*labels, WccReference(g));
}

TEST(SqlConnectedComponentsTest, DirectionIgnored) {
  Graph g;
  g.num_vertices = 4;
  g.AddEdge(1, 0);  // against the "flow"
  g.AddEdge(1, 2);
  auto labels = SqlConnectedComponents(g);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ((*labels)[0], 0);
  EXPECT_EQ((*labels)[1], 0);
  EXPECT_EQ((*labels)[2], 0);
  EXPECT_EQ((*labels)[3], 3);
}

TEST(SqlConnectedComponentsTest, LongPathConverges) {
  Graph g;
  g.num_vertices = 50;
  for (int64_t v = 0; v + 1 < 50; ++v) g.AddEdge(v + 1, v);
  auto labels = SqlConnectedComponents(g);
  ASSERT_TRUE(labels.ok());
  for (int64_t v = 0; v < 50; ++v) {
    EXPECT_EQ((*labels)[static_cast<size_t>(v)], 0);
  }
}

TEST(SqlTriangleTest, CountsKnownGraph) {
  auto count = SqlTriangleCount(TriangleWithTail());
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, 2);
}

TEST(SqlTriangleTest, MatchesReferenceOnRandomGraph) {
  Graph g = GenerateRmat(100, 800, 44);
  auto count = SqlTriangleCount(g);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, TriangleCountReference(g));
}

TEST(SqlTriangleTest, PerNodeMatchesReference) {
  Graph g = GenerateRmat(80, 500, 45);
  auto per = SqlPerNodeTriangles(MakeEdgeListTable(g));
  ASSERT_TRUE(per.ok());
  auto expect = PerVertexTrianglesReference(g);
  // SQL result only has vertices with >= 1 triangle.
  int64_t nonzero = 0;
  for (int64_t c : expect) {
    if (c > 0) ++nonzero;
  }
  EXPECT_EQ(per->num_rows(), nonzero);
  for (int64_t r = 0; r < per->num_rows(); ++r) {
    const int64_t id = per->ColumnByName("id")->GetInt64(r);
    EXPECT_EQ(per->ColumnByName("triangles")->GetInt64(r),
              expect[static_cast<size_t>(id)])
        << "vertex " << id;
  }
}

TEST(SqlStrongOverlapTest, FindsCommonNeighborPairs) {
  // 0 and 1 share neighbours {2, 3}; all others share fewer.
  Graph g;
  g.num_vertices = 5;
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  g.AddEdge(4, 2);
  auto overlap = SqlStrongOverlap(g, 2);
  ASSERT_TRUE(overlap.ok()) << overlap.status().ToString();
  // In the undirected view, (0,1) share {2,3} and (2,3) share {0,1}.
  ASSERT_EQ(overlap->num_rows(), 2);
  EXPECT_EQ(overlap->ColumnByName("a")->GetInt64(0), 0);
  EXPECT_EQ(overlap->ColumnByName("b")->GetInt64(0), 1);
  EXPECT_EQ(overlap->ColumnByName("common")->GetInt64(0), 2);
  EXPECT_EQ(overlap->ColumnByName("a")->GetInt64(1), 2);
  EXPECT_EQ(overlap->ColumnByName("b")->GetInt64(1), 3);
  EXPECT_EQ(overlap->ColumnByName("common")->GetInt64(1), 2);
}

TEST(SqlStrongOverlapTest, ThresholdOne) {
  Graph g;
  g.num_vertices = 3;
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  auto overlap = SqlStrongOverlap(g, 1);
  ASSERT_TRUE(overlap.ok());
  // Pairs sharing >= 1 neighbour: (0,1) via 2. Note 0 and 2 share none.
  ASSERT_EQ(overlap->num_rows(), 1);
}

TEST(SqlWeakTiesTest, BridgeNodeScoresHighest) {
  // Star: 0 connects 1..4, none of which interconnect => 0 bridges all 6
  // pairs; leaves bridge none.
  Graph g;
  g.num_vertices = 5;
  for (int64_t v = 1; v < 5; ++v) g.AddEdge(0, v);
  auto ties = SqlWeakTies(g, 1);
  ASSERT_TRUE(ties.ok()) << ties.status().ToString();
  ASSERT_EQ(ties->num_rows(), 1);
  EXPECT_EQ(ties->ColumnByName("id")->GetInt64(0), 0);
  EXPECT_EQ(ties->ColumnByName("open_pairs")->GetInt64(0), 6);
}

TEST(SqlWeakTiesTest, TriangleHasNoWeakTies) {
  Graph g;
  g.num_vertices = 3;
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  auto ties = SqlWeakTies(g, 1);
  ASSERT_TRUE(ties.ok());
  EXPECT_EQ(ties->num_rows(), 0);
}

TEST(ClusteringCoefficientTest, KnownValues) {
  auto cc = SqlClusteringCoefficients(TriangleWithTail());
  ASSERT_TRUE(cc.ok()) << cc.status().ToString();
  // Vertex 1: neighbours {0,2,3}, edges among them: (0,2),(2,3) => 2/3.
  for (int64_t r = 0; r < cc->num_rows(); ++r) {
    const int64_t id = cc->ColumnByName("id")->GetInt64(r);
    const double coeff = cc->ColumnByName("coeff")->GetDouble(r);
    if (id == 1) {
      EXPECT_NEAR(coeff, 2.0 / 3.0, 1e-9);
    }
    if (id == 4) {
      EXPECT_DOUBLE_EQ(coeff, 0.0);  // degree 1
    }
  }
}

TEST(ClusteringCoefficientTest, CompleteGraphIsOne) {
  Graph g;
  g.num_vertices = 4;
  for (int64_t a = 0; a < 4; ++a) {
    for (int64_t b = a + 1; b < 4; ++b) g.AddEdge(a, b);
  }
  auto global = SqlGlobalClusteringCoefficient(g);
  ASSERT_TRUE(global.ok());
  EXPECT_NEAR(*global, 1.0, 1e-9);
  auto cc = SqlClusteringCoefficients(g);
  ASSERT_TRUE(cc.ok());
  for (int64_t r = 0; r < cc->num_rows(); ++r) {
    EXPECT_NEAR(cc->ColumnByName("coeff")->GetDouble(r), 1.0, 1e-9);
  }
}

TEST(ClusteringCoefficientTest, MaxClusteringVertex) {
  // Vertex 4 sits in a triangle with 5,6 (coeff 1); vertex 0 is a star
  // centre (coeff 0).
  Graph g;
  g.num_vertices = 7;
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  g.AddEdge(4, 5);
  g.AddEdge(5, 6);
  g.AddEdge(6, 4);
  auto best = SqlMaxClusteringVertex(MakeEdgeListTable(g));
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(*best, 4);  // ties (4,5,6) broken by lowest id
}

TEST(SqlErrorPathTest, MissingColumnsSurfaceErrors) {
  Table bad(Schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}}));
  Table vertices(Schema({{"id", DataType::kInt64}}));
  VX_CHECK_OK(vertices.AppendRow({Value(int64_t{0})}));
  // SqlPageRank requires src/dst.
  EXPECT_FALSE(SqlPageRank(vertices, bad, 2).ok());
  // Shortest paths additionally needs weight.
  Table no_weight(Schema({{"src", DataType::kInt64},
                          {"dst", DataType::kInt64}}));
  EXPECT_FALSE(SqlShortestPaths(vertices, no_weight, 0).ok());
  // Strong overlap over a table without src/dst.
  EXPECT_FALSE(SqlStrongOverlap(bad, 1).ok());
}

TEST(SqlErrorPathTest, EmptyEdgeTablesAreFine) {
  Table empty(Schema({{"src", DataType::kInt64},
                      {"dst", DataType::kInt64},
                      {"weight", DataType::kDouble}}));
  auto tri = SqlTriangleCount(empty);
  ASSERT_TRUE(tri.ok());
  EXPECT_EQ(*tri, 0);
  auto overlap = SqlStrongOverlap(empty, 1);
  ASSERT_TRUE(overlap.ok());
  EXPECT_EQ(overlap->num_rows(), 0);
  auto ties = SqlWeakTies(empty, 1);
  ASSERT_TRUE(ties.ok());
  EXPECT_EQ(ties->num_rows(), 0);
}

TEST(ClusteringCoefficientTest, EmptyEdgesNotFound) {
  Table e(Schema({{"src", DataType::kInt64},
                  {"dst", DataType::kInt64},
                  {"weight", DataType::kDouble}}));
  EXPECT_TRUE(SqlMaxClusteringVertex(e).status().IsNotFound());
}

}  // namespace
}  // namespace vertexica
