// Randomized algebraic-identity property tests for the relational engine:
// classic rewrite rules must hold on arbitrary data. These guard the
// operators that every Vertexica superstep is composed of.

#include <gtest/gtest.h>

#include "common/random.h"
#include "exec/plan_builder.h"

namespace vertexica {
namespace {

/// A random table with int64/double/string columns and ~10% NULLs.
Table RandomTable(uint64_t seed, int64_t rows) {
  Rng rng(seed);
  Table t(Schema({{"k", DataType::kInt64},
                  {"v", DataType::kInt64},
                  {"x", DataType::kDouble},
                  {"s", DataType::kString}}));
  for (int64_t r = 0; r < rows; ++r) {
    auto maybe_null = [&](Value v) {
      return rng.Bernoulli(0.1) ? Value::Null() : v;
    };
    VX_CHECK_OK(t.AppendRow(
        {maybe_null(Value(static_cast<int64_t>(rng.Uniform(20)))),
         maybe_null(Value(rng.UniformRange(-50, 50))),
         maybe_null(Value(rng.NextDouble() * 10)),
         maybe_null(Value(rng.NextString(3)))}));
  }
  return t;
}

class PlanIdentityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlanIdentityTest, FilterSplitEqualsConjunction) {
  Table t = RandomTable(GetParam(), 300);
  ExprPtr p = Gt(Col("v"), Lit(int64_t{0}));
  ExprPtr q = Lt(Col("x"), Lit(5.0));
  auto chained =
      PlanBuilder::Scan(t).Filter(p).Filter(q).Execute();
  auto combined = PlanBuilder::Scan(t).Filter(And(p, q)).Execute();
  ASSERT_TRUE(chained.ok());
  ASSERT_TRUE(combined.ok());
  EXPECT_TRUE(chained->Equals(*combined));
}

TEST_P(PlanIdentityTest, ProjectionComposition) {
  Table t = RandomTable(GetParam(), 200);
  // π_{a=v+1} ∘ π_{v} == π_{a=v+1}
  auto two_step = PlanBuilder::Scan(t)
                      .Select({"v"})
                      .Project({{"a", Add(Col("v"), Lit(int64_t{1}))}})
                      .Execute();
  auto one_step = PlanBuilder::Scan(t)
                      .Project({{"a", Add(Col("v"), Lit(int64_t{1}))}})
                      .Execute();
  ASSERT_TRUE(two_step.ok());
  ASSERT_TRUE(one_step.ok());
  EXPECT_TRUE(two_step->Equals(*one_step));
}

TEST_P(PlanIdentityTest, UnionCountsAdd) {
  Table a = RandomTable(GetParam(), 150);
  Table b = RandomTable(GetParam() + 1000, 250);
  auto u = PlanBuilder::Scan(a).Union(PlanBuilder::Scan(b)).Execute();
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->num_rows(), 400);
}

TEST_P(PlanIdentityTest, DistinctIsIdempotent) {
  Table t = RandomTable(GetParam(), 120);
  auto once = PlanBuilder::Scan(t).Select({"k"}).Distinct().Execute();
  ASSERT_TRUE(once.ok());
  auto twice = PlanBuilder::Scan(*once).Distinct().Execute();
  ASSERT_TRUE(twice.ok());
  EXPECT_TRUE(once->Equals(*twice));
}

TEST_P(PlanIdentityTest, TopNEqualsSortLimit) {
  Table t = RandomTable(GetParam(), 400);
  auto topn = PlanBuilder::Scan(t, /*batch_size=*/37)
                  .TopN({{"v", true}, {"k", false}}, 25)
                  .Execute();
  auto sorted = PlanBuilder::Scan(t)
                    .OrderBy({{"v", true}, {"k", false}})
                    .Limit(25)
                    .Execute();
  ASSERT_TRUE(topn.ok());
  ASSERT_TRUE(sorted.ok());
  EXPECT_TRUE(topn->Equals(*sorted));
}

TEST_P(PlanIdentityTest, SemiPlusAntiPartitionProbe) {
  Table probe = RandomTable(GetParam(), 200);
  Table build = RandomTable(GetParam() + 7, 100);
  auto semi = PlanBuilder::Scan(probe)
                  .Join(PlanBuilder::Scan(build), {"k"}, {"k"},
                        JoinType::kSemi)
                  .Execute();
  auto anti = PlanBuilder::Scan(probe)
                  .Join(PlanBuilder::Scan(build), {"k"}, {"k"},
                        JoinType::kAnti)
                  .Execute();
  ASSERT_TRUE(semi.ok());
  ASSERT_TRUE(anti.ok());
  // Semi and anti partition the probe side exactly.
  EXPECT_EQ(semi->num_rows() + anti->num_rows(), probe.num_rows());
}

TEST_P(PlanIdentityTest, LeftJoinPreservesProbeRows) {
  Table probe = RandomTable(GetParam(), 150);
  Table build = RandomTable(GetParam() + 13, 60);
  // Deduplicate build keys so the left join cannot fan out.
  auto dedup_build = PlanBuilder::Scan(build)
                         .Select({"k"})
                         .Distinct()
                         .Filter(IsNotNull(Col("k")))
                         .Execute();
  ASSERT_TRUE(dedup_build.ok());
  auto left = PlanBuilder::Scan(probe)
                  .Join(PlanBuilder::Scan(*dedup_build), {"k"}, {"k"},
                        JoinType::kLeft)
                  .Execute();
  ASSERT_TRUE(left.ok());
  EXPECT_EQ(left->num_rows(), probe.num_rows());
}

TEST_P(PlanIdentityTest, GroupCountsSumToRows) {
  Table t = RandomTable(GetParam(), 300);
  auto grouped = PlanBuilder::Scan(t)
                     .Aggregate({"k"}, {{AggOp::kCountStar, "", "n"}})
                     .Aggregate({}, {{AggOp::kSum, "n", "total"}})
                     .Execute();
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->column(0).GetInt64(0), 300);
}

TEST_P(PlanIdentityTest, FilterThenAggEqualsAggOfFiltered) {
  Table t = RandomTable(GetParam(), 250);
  ExprPtr p = Ge(Col("v"), Lit(int64_t{0}));
  auto direct = PlanBuilder::Scan(t)
                    .Filter(p)
                    .Aggregate({}, {{AggOp::kCountStar, "", "n"}})
                    .Execute();
  // Oracle: count rows manually.
  int64_t expected = 0;
  const Column& v = *t.ColumnByName("v");
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    if (!v.IsNull(r) && v.GetInt64(r) >= 0) ++expected;
  }
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct->column(0).GetInt64(0), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanIdentityTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace vertexica
