// Tests for dynamic graph analysis (§3.3, §4.2.3): versioned edge store,
// temporal diff queries, and the continuous runner.

#include <gtest/gtest.h>

#include "graphgen/generators.h"
#include "sqlgraph/sql_common.h"
#include "sqlgraph/triangle_count.h"
#include "temporal/continuous.h"
#include "temporal/versioned_graph.h"

namespace vertexica {
namespace {

Table EdgeRows(const std::vector<std::tuple<int64_t, int64_t, double>>& rows) {
  Table t(Schema({{"src", DataType::kInt64},
                  {"dst", DataType::kInt64},
                  {"weight", DataType::kDouble}}));
  for (const auto& [s, d, w] : rows) {
    VX_CHECK_OK(t.AppendRow({Value(s), Value(d), Value(w)}));
  }
  return t;
}

TEST(VersionedGraphTest, CommitAndReadBack) {
  Catalog cat;
  VersionedGraphStore store(&cat);
  auto v1 = store.CommitVersion(EdgeRows({{0, 1, 1.0}}));
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*v1, 1);
  auto v2 = store.CommitVersion(EdgeRows({{0, 1, 1.0}, {1, 2, 1.0}}));
  EXPECT_EQ(*v2, 2);
  EXPECT_EQ(store.latest_version(), 2);
  EXPECT_EQ((*store.EdgesAt(1)).num_rows(), 1);
  EXPECT_EQ((*store.EdgesAt(2)).num_rows(), 2);
  EXPECT_TRUE(store.EdgesAt(3).status().IsOutOfRange());
  EXPECT_TRUE(store.EdgesAt(0).status().IsOutOfRange());
}

TEST(VersionedGraphTest, RejectsBadSchema) {
  Catalog cat;
  VersionedGraphStore store(&cat);
  Table bad(Schema({{"x", DataType::kInt64}}));
  EXPECT_TRUE(store.CommitVersion(bad).status().IsInvalidArgument());
}

TEST(VersionedGraphTest, AddAndRemoveEdges) {
  Catalog cat;
  VersionedGraphStore store(&cat);
  ASSERT_TRUE(store.CommitVersion(EdgeRows({{0, 1, 1.0}, {1, 2, 1.0}})).ok());
  ASSERT_TRUE(store.AddEdges(EdgeRows({{2, 3, 1.0}})).ok());
  EXPECT_EQ((*store.EdgesAt(2)).num_rows(), 3);
  ASSERT_TRUE(store.RemoveEdges(EdgeRows({{0, 1, 0.0}})).ok());
  Table v3 = *store.EdgesAt(3);
  EXPECT_EQ(v3.num_rows(), 2);
  // The removed edge is gone; old versions are untouched.
  for (int64_t r = 0; r < v3.num_rows(); ++r) {
    EXPECT_FALSE(v3.ColumnByName("src")->GetInt64(r) == 0 &&
                 v3.ColumnByName("dst")->GetInt64(r) == 1);
  }
  EXPECT_EQ((*store.EdgesAt(1)).num_rows(), 2);
}

TEST(VersionedGraphTest, UpdateEdgeColumn) {
  Catalog cat;
  VersionedGraphStore store(&cat);
  ASSERT_TRUE(store.CommitVersion(EdgeRows({{0, 1, 1.0}, {1, 2, 5.0}})).ok());
  ASSERT_TRUE(store.UpdateEdgeColumn(EdgeRows({{1, 2, 9.0}}), "weight").ok());
  Table v2 = *store.EdgesAt(2);
  ASSERT_EQ(v2.num_rows(), 2);
  for (int64_t r = 0; r < v2.num_rows(); ++r) {
    if (v2.ColumnByName("src")->GetInt64(r) == 1) {
      EXPECT_DOUBLE_EQ(v2.ColumnByName("weight")->GetDouble(r), 9.0);
    } else {
      EXPECT_DOUBLE_EQ(v2.ColumnByName("weight")->GetDouble(r), 1.0);
    }
  }
}

TEST(TemporalQueriesTest, PageRankDeltaDetectsChange) {
  Catalog cat;
  VersionedGraphStore store(&cat);
  // v1: chain 0->1->2. v2: extra edges into 2 boost its rank.
  ASSERT_TRUE(store.CommitVersion(
                       EdgeRows({{0, 1, 1.0}, {1, 2, 1.0}, {3, 0, 1.0}}))
                  .ok());
  ASSERT_TRUE(store.AddEdges(EdgeRows({{3, 2, 1.0}, {0, 2, 1.0}})).ok());
  auto delta = PageRankDelta(store, 1, 2, 10);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  ASSERT_GT(delta->num_rows(), 0);
  // Vertex 2's rank must have increased.
  bool found2 = false;
  for (int64_t r = 0; r < delta->num_rows(); ++r) {
    if (delta->ColumnByName("id")->GetInt64(r) == 2) {
      found2 = true;
      EXPECT_GT(delta->ColumnByName("delta")->GetDouble(r), 0.0);
    }
  }
  EXPECT_TRUE(found2);
}

TEST(TemporalQueriesTest, ShortestPathDecreaseFindsShortcut) {
  Catalog cat;
  VersionedGraphStore store(&cat);
  // v1: 0->1->2->3 (each weight 1). v2 adds shortcut 0->3 (weight 1).
  ASSERT_TRUE(store.CommitVersion(
                       EdgeRows({{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}}))
                  .ok());
  ASSERT_TRUE(store.AddEdges(EdgeRows({{0, 3, 1.0}})).ok());
  auto closer = ShortestPathDecrease(store, 1, 2, /*source=*/0,
                                     /*min_decrease=*/1.0);
  ASSERT_TRUE(closer.ok()) << closer.status().ToString();
  ASSERT_EQ(closer->num_rows(), 1);
  EXPECT_EQ(closer->ColumnByName("id")->GetInt64(0), 3);
  EXPECT_DOUBLE_EQ(closer->ColumnByName("old_dist")->GetDouble(0), 3.0);
  EXPECT_DOUBLE_EQ(closer->ColumnByName("new_dist")->GetDouble(0), 1.0);
}

TEST(TemporalQueriesTest, NewlyReachableCountsAsCloser) {
  Catalog cat;
  VersionedGraphStore store(&cat);
  ASSERT_TRUE(store.CommitVersion(EdgeRows({{0, 1, 1.0}, {2, 3, 1.0}})).ok());
  ASSERT_TRUE(store.AddEdges(EdgeRows({{1, 2, 1.0}})).ok());
  auto closer = ShortestPathDecrease(store, 1, 2, 0);
  ASSERT_TRUE(closer.ok());
  // Vertices 2 and 3 become reachable (infinite decrease).
  EXPECT_EQ(closer->num_rows(), 2);
}

TEST(ContinuousTest, PollProcessesEachVersionOnce) {
  Catalog cat;
  VersionedGraphStore store(&cat);
  ASSERT_TRUE(store.CommitVersion(EdgeRows({{0, 1, 1.0}})).ok());

  int runs = 0;
  ContinuousRunner runner(&store, "edge count",
                          [&runs](const Table& edges) -> Result<Table> {
                            ++runs;
                            Table t(Schema({{"edges", DataType::kInt64}}));
                            VX_RETURN_NOT_OK(
                                t.AppendRow({Value(edges.num_rows())}));
                            return t;
                          });
  auto ticks = runner.Poll();
  ASSERT_TRUE(ticks.ok());
  EXPECT_EQ(ticks->size(), 1u);
  EXPECT_EQ(runs, 1);

  // No new versions: nothing re-runs.
  ticks = runner.Poll();
  EXPECT_TRUE(ticks->empty());
  EXPECT_EQ(runs, 1);

  // Two new versions: both evaluated, in order.
  ASSERT_TRUE(store.AddEdges(EdgeRows({{1, 2, 1.0}})).ok());
  ASSERT_TRUE(store.AddEdges(EdgeRows({{2, 3, 1.0}})).ok());
  ticks = runner.Poll();
  ASSERT_TRUE(ticks.ok());
  ASSERT_EQ(ticks->size(), 2u);
  EXPECT_EQ((*ticks)[0].version, 2);
  EXPECT_EQ((*ticks)[1].version, 3);
  EXPECT_EQ((*ticks)[0].result.column(0).GetInt64(0), 2);
  EXPECT_EQ((*ticks)[1].result.column(0).GetInt64(0), 3);
  EXPECT_EQ(runner.history().size(), 3u);
}

TEST(ContinuousTest, AnalysisTimingsRecorded) {
  Catalog cat;
  VersionedGraphStore store(&cat);
  Graph g = GenerateRmat(60, 250, 81);
  ASSERT_TRUE(store.CommitVersion(MakeEdgeListTable(g)).ok());
  ContinuousRunner runner(&store, "triangles",
                          [](const Table& edges) -> Result<Table> {
                            return SqlPerNodeTriangles(edges);
                          });
  auto ticks = runner.Poll();
  ASSERT_TRUE(ticks.ok());
  ASSERT_EQ(ticks->size(), 1u);
  EXPECT_GE((*ticks)[0].seconds, 0.0);
}

}  // namespace
}  // namespace vertexica
