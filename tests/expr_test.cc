// Unit tests for scalar expression evaluation.

#include <gtest/gtest.h>

#include <cmath>

#include "expr/expression.h"

namespace vertexica {
namespace {

Table NumBatch() {
  Table t(Schema({{"a", DataType::kInt64},
                  {"b", DataType::kInt64},
                  {"x", DataType::kDouble}}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value(int64_t{10}), Value(0.5)}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{2}), Value(int64_t{20}), Value(1.5)}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{3}), Value(int64_t{30}), Value(2.5)}));
  return t;
}

TEST(ExprTest, ColumnRef) {
  Table t = NumBatch();
  auto col = Col("b")->Evaluate(t);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col->GetInt64(2), 30);
}

TEST(ExprTest, UnknownColumnFails) {
  Table t = NumBatch();
  EXPECT_TRUE(Col("nope")->Evaluate(t).status().IsInvalidArgument());
  EXPECT_TRUE(
      Col("nope")->OutputType(t.schema()).status().IsInvalidArgument());
}

TEST(ExprTest, LiteralBroadcasts) {
  Table t = NumBatch();
  auto col = Lit(int64_t{7})->Evaluate(t);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col->length(), 3);
  EXPECT_EQ(col->GetInt64(0), 7);
  EXPECT_EQ(col->GetInt64(2), 7);
}

TEST(ExprTest, IntArithmeticStaysInt) {
  Table t = NumBatch();
  auto e = Add(Col("a"), Col("b"));
  ASSERT_TRUE(e->OutputType(t.schema()).ok());
  EXPECT_EQ(*e->OutputType(t.schema()), DataType::kInt64);
  auto col = e->Evaluate(t);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col->GetInt64(1), 22);
}

TEST(ExprTest, MixedArithmeticPromotesToDouble) {
  Table t = NumBatch();
  auto e = Mul(Col("a"), Col("x"));
  EXPECT_EQ(*e->OutputType(t.schema()), DataType::kDouble);
  auto col = e->Evaluate(t);
  ASSERT_TRUE(col.ok());
  EXPECT_DOUBLE_EQ(col->GetDouble(2), 7.5);
}

TEST(ExprTest, DivisionAlwaysDouble) {
  Table t = NumBatch();
  auto e = Div(Col("b"), Col("a"));
  EXPECT_EQ(*e->OutputType(t.schema()), DataType::kDouble);
  auto col = e->Evaluate(t);
  EXPECT_DOUBLE_EQ(col->GetDouble(1), 10.0);
}

TEST(ExprTest, ModuloInt) {
  Table t = NumBatch();
  auto col = Mod(Col("b"), Lit(int64_t{7}))->Evaluate(t);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col->GetInt64(0), 3);   // 10 % 7
  EXPECT_EQ(col->GetInt64(2), 2);   // 30 % 7
}

TEST(ExprTest, ArithmeticOnStringIsTypeError) {
  Schema s({{"s", DataType::kString}});
  auto e = Add(Col("s"), Lit(int64_t{1}));
  EXPECT_TRUE(e->OutputType(s).status().IsTypeError());
}

TEST(ExprTest, Comparisons) {
  Table t = NumBatch();
  auto col = Gt(Col("b"), Lit(int64_t{15}))->Evaluate(t);
  ASSERT_TRUE(col.ok());
  EXPECT_FALSE(col->GetBool(0));
  EXPECT_TRUE(col->GetBool(1));
  EXPECT_TRUE(col->GetBool(2));
}

TEST(ExprTest, CrossTypeNumericComparison) {
  Table t = NumBatch();
  auto col = Lt(Col("a"), Col("x"))->Evaluate(t);  // int vs double
  ASSERT_TRUE(col.ok());
  EXPECT_FALSE(col->GetBool(0));  // 1 < 0.5 ? no
  EXPECT_FALSE(col->GetBool(1));  // 2 < 1.5 ? no
  EXPECT_FALSE(col->GetBool(2));  // 3 < 2.5 ? no
}

TEST(ExprTest, StringComparison) {
  Table t(Schema({{"s", DataType::kString}}));
  VX_CHECK_OK(t.AppendRow({Value("apple")}));
  VX_CHECK_OK(t.AppendRow({Value("pear")}));
  auto col = Eq(Col("s"), Lit(std::string("pear")))->Evaluate(t);
  ASSERT_TRUE(col.ok());
  EXPECT_FALSE(col->GetBool(0));
  EXPECT_TRUE(col->GetBool(1));
}

TEST(ExprTest, CompareStringWithIntFails) {
  Schema s({{"s", DataType::kString}});
  EXPECT_TRUE(Eq(Col("s"), Lit(int64_t{1}))->OutputType(s).status().IsTypeError());
}

TEST(ExprTest, NullPropagationInArithmetic) {
  Table t(Schema({{"a", DataType::kInt64}}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1})}));
  VX_CHECK_OK(t.AppendRow({Value::Null()}));
  auto col = Add(Col("a"), Lit(int64_t{1}))->Evaluate(t);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col->GetInt64(0), 2);
  EXPECT_TRUE(col->IsNull(1));
}

TEST(ExprTest, KleeneAnd) {
  Table t(Schema({{"p", DataType::kBool}, {"q", DataType::kBool}}));
  VX_CHECK_OK(t.AppendRow({Value(false), Value::Null()}));
  VX_CHECK_OK(t.AppendRow({Value(true), Value::Null()}));
  VX_CHECK_OK(t.AppendRow({Value(true), Value(true)}));
  auto col = And(Col("p"), Col("q"))->Evaluate(t);
  ASSERT_TRUE(col.ok());
  EXPECT_FALSE(col->GetBool(0));   // false AND NULL = false
  EXPECT_FALSE(col->IsNull(0));
  EXPECT_TRUE(col->IsNull(1));     // true AND NULL = NULL
  EXPECT_TRUE(col->GetBool(2));
}

TEST(ExprTest, KleeneOr) {
  Table t(Schema({{"p", DataType::kBool}, {"q", DataType::kBool}}));
  VX_CHECK_OK(t.AppendRow({Value(true), Value::Null()}));
  VX_CHECK_OK(t.AppendRow({Value(false), Value::Null()}));
  auto col = Or(Col("p"), Col("q"))->Evaluate(t);
  ASSERT_TRUE(col.ok());
  EXPECT_TRUE(col->GetBool(0));    // true OR NULL = true
  EXPECT_TRUE(col->IsNull(1));     // false OR NULL = NULL
}

TEST(ExprTest, NotAndIsNull) {
  Table t(Schema({{"p", DataType::kBool}}));
  VX_CHECK_OK(t.AppendRow({Value(true)}));
  VX_CHECK_OK(t.AppendRow({Value::Null()}));
  auto ncol = Not(Col("p"))->Evaluate(t);
  ASSERT_TRUE(ncol.ok());
  EXPECT_FALSE(ncol->GetBool(0));
  EXPECT_TRUE(ncol->IsNull(1));
  auto inul = IsNull(Col("p"))->Evaluate(t);
  EXPECT_FALSE(inul->GetBool(0));
  EXPECT_TRUE(inul->GetBool(1));
  auto notnull = IsNotNull(Col("p"))->Evaluate(t);
  EXPECT_TRUE(notnull->GetBool(0));
  EXPECT_FALSE(notnull->GetBool(1));
}

TEST(ExprTest, NegateAndAbs) {
  Table t = NumBatch();
  auto ncol = Negate(Col("a"))->Evaluate(t);
  EXPECT_EQ(ncol->GetInt64(0), -1);
  auto acol = Abs(Negate(Col("x")))->Evaluate(t);
  EXPECT_DOUBLE_EQ(acol->GetDouble(0), 0.5);
}

TEST(ExprTest, CastIntToDoubleAndBack) {
  Table t = NumBatch();
  auto dcol = Cast(Col("a"), DataType::kDouble)->Evaluate(t);
  EXPECT_EQ(dcol->type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(dcol->GetDouble(2), 3.0);
  auto icol = Cast(Col("x"), DataType::kInt64)->Evaluate(t);
  EXPECT_EQ(icol->GetInt64(1), 1);  // trunc(1.5)
}

TEST(ExprTest, CastToString) {
  Table t = NumBatch();
  auto scol = Cast(Col("a"), DataType::kString)->Evaluate(t);
  EXPECT_EQ(scol->GetString(0), "1");
}

TEST(ExprTest, CastBoolToInt) {
  Table t(Schema({{"p", DataType::kBool}}));
  VX_CHECK_OK(t.AppendRow({Value(true)}));
  VX_CHECK_OK(t.AppendRow({Value(false)}));
  auto col = Cast(Col("p"), DataType::kInt64)->Evaluate(t);
  EXPECT_EQ(col->GetInt64(0), 1);
  EXPECT_EQ(col->GetInt64(1), 0);
}

TEST(ExprTest, ToStringRendersSql) {
  auto e = And(Gt(Col("rank"), Lit(0.5)), Eq(Col("type"), Lit(std::string("family"))));
  EXPECT_EQ(e->ToString(), "((rank > 0.5) AND (type = 'family'))");
}

TEST(ExprTest, NestedExpression) {
  Table t = NumBatch();
  // (a + b) * 2 - a
  auto e = Sub(Mul(Add(Col("a"), Col("b")), Lit(int64_t{2})), Col("a"));
  auto col = e->Evaluate(t);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col->GetInt64(0), 21);
  EXPECT_EQ(col->GetInt64(2), 63);
}

TEST(ExprTest, DivByZeroYieldsInf) {
  Table t(Schema({{"a", DataType::kDouble}}));
  VX_CHECK_OK(t.AppendRow({Value(1.0)}));
  auto col = Div(Col("a"), Lit(0.0))->Evaluate(t);
  ASSERT_TRUE(col.ok());
  EXPECT_TRUE(std::isinf(col->GetDouble(0)));
}

}  // namespace
}  // namespace vertexica
