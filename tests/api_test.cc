// Tests for the Engine facade: backend registration, the AlgorithmRegistry,
// and — the point of the whole API — cross-backend parity: the same
// RunRequest produces the same per-vertex answers on every backend.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "algorithms/reference.h"
#include "api/engine.h"
#include "graphgen/generators.h"

namespace vertexica {
namespace {

// Deterministic small graphs shared by the parity suites.
Graph ParityGraph() {
  Graph g = GenerateRmat(120, 700, 13);
  AssignRandomWeights(&g, 1.0, 5.0, 13);
  return g;
}

void ExpectVectorsAgree(const std::vector<double>& actual,
                        const std::vector<double>& expect, double tolerance,
                        const std::string& label) {
  ASSERT_EQ(actual.size(), expect.size()) << label;
  for (size_t v = 0; v < expect.size(); ++v) {
    if (std::isinf(expect[v])) {
      EXPECT_TRUE(std::isinf(actual[v]))
          << label << ": vertex " << v << " should be unreachable";
    } else {
      EXPECT_NEAR(actual[v], expect[v], tolerance)
          << label << ": vertex " << v;
    }
  }
}

TEST(EngineTest, DefaultBackendsInPaperOrder) {
  Engine engine;
  EXPECT_EQ(engine.backends(),
            (std::vector<std::string>{"vertexica", "sqlgraph", "giraph",
                                      "graphdb"}));
  EXPECT_EQ(engine.default_backend(), "vertexica");
}

TEST(EngineTest, RegistryKnowsBuiltinAlgorithms) {
  Engine engine;
  const auto algorithms = engine.algorithms();
  const std::set<std::string> names(algorithms.begin(), algorithms.end());
  for (const char* algo :
       {"pagerank", "sssp", "connected_components", "triangle_count"}) {
    EXPECT_TRUE(names.count(algo) > 0) << algo;
  }
  // pagerank and sssp run everywhere; triangle_count has no graph-database
  // implementation (the paper's point about 1-hop queries stands).
  for (const std::string& backend : engine.backends()) {
    EXPECT_TRUE(engine.Supports("pagerank", backend)) << backend;
    EXPECT_TRUE(engine.Supports("sssp", backend)) << backend;
  }
  EXPECT_FALSE(engine.Supports("triangle_count", "graphdb"));
}

TEST(EngineTest, RunWithoutGraphFails) {
  Engine engine;
  auto result = engine.Run("pagerank");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(EngineTest, UnknownAlgorithmAndBackendFail) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraph(ParityGraph()).ok());
  EXPECT_TRUE(engine.Run("no_such_algorithm").status().IsNotFound());
  EXPECT_TRUE(engine.Run("pagerank", "no_such_backend").status().IsNotFound());
  EXPECT_TRUE(engine.Run("triangle_count", "graphdb").status().IsNotFound());
}

TEST(EngineTest, BackendsPrepareLazily) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraph(ParityGraph()).ok());
  ASSERT_TRUE(engine.Run("pagerank").ok());
  EXPECT_TRUE(engine.backend("vertexica")->prepared());
  // The record-store bulk load has not been paid: no run targeted graphdb.
  EXPECT_FALSE(engine.backend("graphdb")->prepared());
}

TEST(EngineTest, RunWithoutPrepareFailsOnBareBackend) {
  VertexicaBackend backend;
  RunRequest request;
  request.algorithm = "pagerank";
  EnsureBuiltinAlgorithms();
  auto result = backend.Run(request);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(EngineTest, CustomBackendRegistration) {
  Engine engine;
  auto st = engine.RegisterBackend(std::make_unique<GiraphBackend>());
  EXPECT_TRUE(st.IsAlreadyExists());  // id clash with the built-in
  EXPECT_EQ(engine.backends().size(), 4u);
}

TEST(ApiParityTest, PageRankAgreesOnAllBackends) {
  const Graph g = ParityGraph();
  const auto expect = PageRankReference(g, 10);
  Engine engine;
  ASSERT_TRUE(engine.LoadGraph(g).ok());
  RunRequest request;
  request.algorithm = "pagerank";
  request.iterations = 10;
  for (const std::string& backend : engine.backends()) {
    request.backend = backend;
    auto result = engine.Run(request);
    ASSERT_TRUE(result.ok())
        << backend << ": " << result.status().ToString();
    EXPECT_EQ(result->backend, backend);
    EXPECT_EQ(result->algorithm, "pagerank");
    EXPECT_EQ(result->value_name, "rank");
    ExpectVectorsAgree(result->values, expect, 1e-6, backend);
  }
}

TEST(ApiParityTest, SsspAgreesOnAllBackends) {
  const Graph g = ParityGraph();
  const auto expect = DijkstraReference(g, 0);
  Engine engine;
  ASSERT_TRUE(engine.LoadGraph(g).ok());
  RunRequest request;
  request.algorithm = "sssp";
  request.source = 0;
  for (const std::string& backend : engine.backends()) {
    request.backend = backend;
    auto result = engine.Run(request);
    ASSERT_TRUE(result.ok())
        << backend << ": " << result.status().ToString();
    EXPECT_EQ(result->value_name, "dist");
    ExpectVectorsAgree(result->values, expect, 1e-9, backend);
  }
}

TEST(ApiParityTest, SsspRejectsBadSourceOnAllBackends) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraph(ParityGraph()).ok());
  RunRequest request;
  request.algorithm = "sssp";
  request.source = 1'000'000;
  for (const std::string& backend : engine.backends()) {
    request.backend = backend;
    EXPECT_TRUE(engine.Run(request).status().IsInvalidArgument()) << backend;
  }
}

TEST(ApiParityTest, ConnectedComponentsAgreeOnAllBackends) {
  Graph g = GenerateErdosRenyi(150, 180, 21);  // sparse: several components
  const auto expect = WccReference(g);
  Engine engine;
  ASSERT_TRUE(engine.LoadGraph(g).ok());
  for (const std::string& backend : engine.backends()) {
    auto result = engine.Run("connected_components", backend);
    ASSERT_TRUE(result.ok())
        << backend << ": " << result.status().ToString();
    ASSERT_EQ(result->values.size(), expect.size()) << backend;
    for (size_t v = 0; v < expect.size(); ++v) {
      EXPECT_EQ(static_cast<int64_t>(result->values[v]), expect[v])
          << backend << ": vertex " << v;
    }
  }
}

TEST(ApiParityTest, TriangleCountAgreesWhereSupported) {
  const Graph g = GenerateRmat(100, 900, 17);
  const auto expect = static_cast<double>(TriangleCountReference(g));
  Engine engine;
  ASSERT_TRUE(engine.LoadGraph(g).ok());
  for (const char* const backend : {"vertexica", "sqlgraph", "giraph"}) {
    auto result = engine.Run("triangle_count", backend);
    ASSERT_TRUE(result.ok())
        << backend << ": " << result.status().ToString();
    auto it = result->aggregates.find("triangles");
    ASSERT_NE(it, result->aggregates.end()) << backend;
    EXPECT_DOUBLE_EQ(it->second, expect) << backend;
  }
}

TEST(ApiParityTest, ThreadsKnobIsBitIdenticalToSerial) {
  // The §2.3 "parallel workers" guarantee of the morsel executor: the
  // `threads` request field must not change results at all. Run every
  // parity algorithm at threads=1 and threads=4 on the relational backends
  // and require bit-identical per-vertex values.
  const Graph g = ParityGraph();
  Engine engine;
  ASSERT_TRUE(engine.LoadGraph(g).ok());
  for (const char* const backend : {"vertexica", "sqlgraph"}) {
    for (const char* algorithm :
         {"pagerank", "sssp", "connected_components", "triangle_count"}) {
      RunRequest request;
      request.algorithm = algorithm;
      request.backend = backend;
      request.iterations = 10;
      request.source = 0;

      request.threads = 1;
      auto serial = engine.Run(request);
      ASSERT_TRUE(serial.ok())
          << backend << "/" << algorithm << ": " << serial.status().ToString();
      request.threads = 4;
      auto parallel = engine.Run(request);
      ASSERT_TRUE(parallel.ok()) << backend << "/" << algorithm << ": "
                                 << parallel.status().ToString();

      ASSERT_EQ(parallel->values.size(), serial->values.size())
          << backend << "/" << algorithm;
      for (size_t v = 0; v < serial->values.size(); ++v) {
        EXPECT_EQ(parallel->values[v], serial->values[v])
            << backend << "/" << algorithm << ": vertex " << v
            << " diverges between threads=1 and threads=4";
      }
      EXPECT_EQ(parallel->aggregates, serial->aggregates)
          << backend << "/" << algorithm;
    }
  }
}

TEST(ApiParityTest, EncodingKnobIsBitIdenticalAcrossModes) {
  // The storage-encoding knob changes only the physical representation of
  // the engine-owned tables (RLE/dictionary segments + zone maps, see
  // docs/STORAGE.md) — results must be bit-identical with encoding forced
  // on and off, on every backend.
  const Graph g = ParityGraph();
  Engine engine;
  ASSERT_TRUE(engine.LoadGraph(g).ok());
  for (const std::string& backend : engine.backends()) {
    for (const char* algorithm : {"pagerank", "sssp"}) {
      RunRequest request;
      request.algorithm = algorithm;
      request.backend = backend;
      request.iterations = 10;
      request.source = 0;

      request.encoding = "off";
      auto plain = engine.Run(request);
      ASSERT_TRUE(plain.ok())
          << backend << "/" << algorithm << ": " << plain.status().ToString();
      request.encoding = "force";
      auto encoded = engine.Run(request);
      ASSERT_TRUE(encoded.ok()) << backend << "/" << algorithm << ": "
                                << encoded.status().ToString();

      ASSERT_EQ(encoded->values.size(), plain->values.size())
          << backend << "/" << algorithm;
      for (size_t v = 0; v < plain->values.size(); ++v) {
        EXPECT_EQ(encoded->values[v], plain->values[v])
            << backend << "/" << algorithm << ": vertex " << v
            << " diverges between encoding=off and encoding=force";
      }
      EXPECT_EQ(encoded->aggregates, plain->aggregates)
          << backend << "/" << algorithm;
    }
  }
}

TEST(ApiParityTest, ShardsKnobIsBitIdenticalAcrossCounts) {
  // The `shards` request field reshapes only the Vertexica superstep
  // dataflow (resident vertex-id shards, cross-shard message exchange —
  // see docs/API.md); backends without a superstep loop ignore it. Results
  // must be bit-identical at any shard count on every backend.
  const Graph g = ParityGraph();
  Engine engine;
  ASSERT_TRUE(engine.LoadGraph(g).ok());
  for (const std::string& backend : engine.backends()) {
    for (const char* algorithm : {"pagerank", "sssp"}) {
      RunRequest request;
      request.algorithm = algorithm;
      request.backend = backend;
      request.iterations = 10;
      request.source = 0;

      request.shards = 0;  // ambient default: unsharded
      auto unsharded = engine.Run(request);
      ASSERT_TRUE(unsharded.ok()) << backend << "/" << algorithm << ": "
                                  << unsharded.status().ToString();
      for (const int shards : {2, 8}) {
        request.shards = shards;
        auto sharded = engine.Run(request);
        ASSERT_TRUE(sharded.ok()) << backend << "/" << algorithm << ": "
                                  << sharded.status().ToString();
        ASSERT_EQ(sharded->values.size(), unsharded->values.size())
            << backend << "/" << algorithm;
        for (size_t v = 0; v < unsharded->values.size(); ++v) {
          EXPECT_EQ(sharded->values[v], unsharded->values[v])
              << backend << "/" << algorithm << ": vertex " << v
              << " diverges between shards=1 and shards=" << shards;
        }
        EXPECT_EQ(sharded->aggregates, unsharded->aggregates)
            << backend << "/" << algorithm;
      }
    }
  }
}

TEST(ApiParityTest, ThreadsKnobAgreesWithReference) {
  // threads=4 runs still match the single-threaded reference answers.
  const Graph g = ParityGraph();
  const auto expect = PageRankReference(g, 10);
  Engine engine;
  ASSERT_TRUE(engine.LoadGraph(g).ok());
  RunRequest request;
  request.algorithm = "pagerank";
  request.iterations = 10;
  request.threads = 4;
  for (const std::string& backend : engine.backends()) {
    request.backend = backend;
    auto result = engine.Run(request);
    ASSERT_TRUE(result.ok()) << backend << ": " << result.status().ToString();
    ExpectVectorsAgree(result->values, expect, 1e-6, backend);
  }
}

TEST(ApiParityTest, VertexicaOptionsPassThrough) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraph(ParityGraph()).ok());
  RunRequest request;
  request.algorithm = "pagerank";
  request.iterations = 50;
  request.vertexica.max_supersteps = 3;
  auto result = engine.Run(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.num_supersteps(), 3);
}

TEST(ApiResultTest, ToTableMaterializesValues) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraph(ParityGraph()).ok());
  auto result = engine.Run("pagerank");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  Table t = result->ToTable();
  EXPECT_EQ(t.num_rows(),
            static_cast<int64_t>(result->values.size()));
  ASSERT_NE(t.ColumnByName("rank"), nullptr);
  EXPECT_DOUBLE_EQ(t.ColumnByName("rank")->GetDouble(5), result->values[5]);
  EXPECT_EQ(t.ColumnByName("id")->GetInt64(5), 5);
}

TEST(ApiResultTest, StatsSerializeUniformly) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraph(ParityGraph()).ok());
  auto vertexica_result = engine.Run("pagerank");
  ASSERT_TRUE(vertexica_result.ok());
  const std::string json = vertexica_result->stats.ToJson();
  EXPECT_NE(json.find("\"num_supersteps\""), std::string::npos);
  EXPECT_NE(json.find("\"worker_seconds\""), std::string::npos);

  // Backends without a per-step phase breakdown still serialize the same
  // shape, and their superstep count stays truthful.
  auto giraph_result = engine.Run("pagerank", "giraph");
  ASSERT_TRUE(giraph_result.ok());
  const std::string giraph_json = giraph_result->stats.ToJson();
  EXPECT_NE(giraph_json.find("\"total_seconds\""), std::string::npos);
  EXPECT_GT(giraph_result->stats.num_supersteps(), 0);
  EXPECT_EQ(giraph_json.find("\"num_supersteps\":0,"), std::string::npos)
      << "expected nonzero superstep count in: " << giraph_json;
}

TEST(ApiResultTest, GiraphModeledCostsSurfaceInMetrics) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraph(ParityGraph()).ok());
  RunRequest request;
  request.algorithm = "pagerank";
  request.backend = "giraph";
  request.giraph.startup_overhead_ms = 1000.0;
  auto result = engine.Run(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_DOUBLE_EQ(result->backend_metrics.at("startup_seconds"), 1.0);
  EXPECT_GE(result->stats.total_seconds, 1.0);
}

TEST(ApiResultTest, GraphDbModeledIoSurfacesInMetrics) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraph(ParityGraph()).ok());
  RunRequest request;
  request.algorithm = "pagerank";
  request.backend = "graphdb";
  request.gdb_access_latency_ns = 2000.0;
  auto result = engine.Run(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->backend_metrics.at("record_accesses"), 0.0);
  EXPECT_GT(result->backend_metrics.at("modeled_io_seconds"), 0.0);
}

TEST(ApiRegistryTest, ApplicationCanRegisterNewAlgorithm) {
  EnsureBuiltinAlgorithms();
  AlgorithmRegistry::Global()->Register(
      "vertex_count", "giraph",
      [](GraphBackend* b, const RunRequest&) -> Result<RunResult> {
        auto* backend = static_cast<GiraphBackend*>(b);
        RunResult result;
        result.aggregates["vertices"] =
            static_cast<double>(backend->graph().num_vertices);
        return result;
      });
  Engine engine;
  ASSERT_TRUE(engine.LoadGraph(ParityGraph()).ok());
  EXPECT_TRUE(engine.Supports("vertex_count", "giraph"));
  auto result = engine.Run("vertex_count", "giraph");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_DOUBLE_EQ(result->aggregates.at("vertices"), 120.0);
}

TEST(ApiRegistryTest, ReloadingGraphRepreparesBackends) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraph(ParityGraph()).ok());
  auto first = engine.Run("pagerank", "sqlgraph");
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->values.size(), 120u);

  Graph small = GenerateRmat(40, 160, 5);
  ASSERT_TRUE(engine.LoadGraph(small).ok());
  auto second = engine.Run("pagerank", "sqlgraph");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->values.size(), 40u);
}

}  // namespace
}  // namespace vertexica
