// Unit tests for the transform-UDF framework and stored procedures.

#include <gtest/gtest.h>

#include <atomic>

#include "udf/stored_procedure.h"
#include "udf/transform.h"

namespace vertexica {
namespace {

/// Sums the "v" column per distinct key within its partition, emitting
/// (key, sum) rows — a miniature of what the Vertexica worker does.
class PerKeySumUdf : public TransformUdf {
 public:
  const Schema& output_schema() const override {
    static const Schema kSchema({{"key", DataType::kInt64},
                                 {"sum", DataType::kInt64}});
    return kSchema;
  }

  Status ProcessPartition(
      const Table& partition,
      const std::function<Status(Table)>& emit) override {
    VX_ASSIGN_OR_RETURN(int key_col, partition.ColumnIndex("key"));
    VX_ASSIGN_OR_RETURN(int val_col, partition.ColumnIndex("v"));
    const auto& keys = partition.column(key_col).ints();
    const auto& vals = partition.column(val_col).ints();
    Table out(output_schema());
    int64_t i = 0;
    const int64_t n = partition.num_rows();
    while (i < n) {
      // Partition is sorted by key: consume one group.
      const int64_t key = keys[static_cast<size_t>(i)];
      int64_t sum = 0;
      while (i < n && keys[static_cast<size_t>(i)] == key) {
        sum += vals[static_cast<size_t>(i)];
        ++i;
      }
      VX_RETURN_NOT_OK(out.AppendRow({Value(key), Value(sum)}));
    }
    return emit(std::move(out));
  }
};

Table KeyValueTable(int64_t num_keys, int64_t rows_per_key) {
  Table t(Schema({{"key", DataType::kInt64}, {"v", DataType::kInt64}}));
  for (int64_t r = 0; r < rows_per_key; ++r) {
    for (int64_t k = 0; k < num_keys; ++k) {
      VX_CHECK_OK(t.AppendRow({Value(k), Value(k + r)}));
    }
  }
  return t;
}

TEST(TransformTest, PartitionedSumMatchesExpected) {
  Table in = KeyValueTable(20, 5);
  TransformOptions opts;
  opts.num_partitions = 4;
  opts.num_workers = 4;
  opts.sort_columns = {0};
  auto result =
      ApplyTransform(in, 0, [] { return std::make_unique<PerKeySumUdf>(); },
                     opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 20);
  // key k appears 5 times with values k, k+1, ..., k+4 => 5k + 10.
  for (int64_t i = 0; i < result->num_rows(); ++i) {
    const int64_t k = result->column(0).GetInt64(i);
    EXPECT_EQ(result->column(1).GetInt64(i), 5 * k + 10);
  }
}

TEST(TransformTest, EachKeyProcessedExactlyOnce) {
  Table in = KeyValueTable(100, 1);
  TransformOptions opts;
  opts.num_partitions = 7;
  opts.sort_columns = {0};
  auto result =
      ApplyTransform(in, 0, [] { return std::make_unique<PerKeySumUdf>(); },
                     opts);
  ASSERT_TRUE(result.ok());
  std::set<int64_t> keys;
  for (int64_t i = 0; i < result->num_rows(); ++i) {
    keys.insert(result->column(0).GetInt64(i));
  }
  EXPECT_EQ(keys.size(), 100u);
}

TEST(TransformTest, EmptyInputProducesEmptyOutput) {
  Table in(Schema({{"key", DataType::kInt64}, {"v", DataType::kInt64}}));
  auto result = ApplyTransform(
      in, 0, [] { return std::make_unique<PerKeySumUdf>(); }, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 0);
  EXPECT_TRUE(result->schema().HasField("sum"));
}

TEST(TransformTest, BadPartitionColumnFails) {
  Table in = KeyValueTable(2, 1);
  auto result = ApplyTransform(
      in, 9, [] { return std::make_unique<PerKeySumUdf>(); }, {});
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

/// UDF that records how many instances were created (lifecycle check).
class CountingUdf : public TransformUdf {
 public:
  static std::atomic<int> instances;
  CountingUdf() { instances++; }
  const Schema& output_schema() const override {
    static const Schema kSchema({{"n", DataType::kInt64}});
    return kSchema;
  }
  Status ProcessPartition(
      const Table& partition,
      const std::function<Status(Table)>& emit) override {
    Table out(output_schema());
    VX_RETURN_NOT_OK(out.AppendRow({Value(partition.num_rows())}));
    return emit(std::move(out));
  }
};
std::atomic<int> CountingUdf::instances{0};

TEST(TransformTest, OneInstancePerNonEmptyPartition) {
  Table in = KeyValueTable(64, 1);
  CountingUdf::instances = 0;
  TransformOptions opts;
  opts.num_partitions = 8;
  auto result = ApplyTransform(
      in, 0, [] { return std::make_unique<CountingUdf>(); }, opts);
  ASSERT_TRUE(result.ok());
  // One throwaway instance for schema discovery + one per non-empty
  // partition (with 64 spread keys, all 8 partitions are non-empty whp).
  EXPECT_GE(CountingUdf::instances.load(), 2);
  int64_t total = 0;
  for (int64_t i = 0; i < result->num_rows(); ++i) {
    total += result->column(0).GetInt64(i);
  }
  EXPECT_EQ(total, 64);
}

/// UDF returning an error: must propagate.
class FailingUdf : public TransformUdf {
 public:
  const Schema& output_schema() const override {
    static const Schema kSchema({{"n", DataType::kInt64}});
    return kSchema;
  }
  Status ProcessPartition(const Table&,
                          const std::function<Status(Table)>&) override {
    return Status::Internal("boom");
  }
};

TEST(TransformTest, UdfErrorPropagates) {
  Table in = KeyValueTable(10, 1);
  auto result = ApplyTransform(
      in, 0, [] { return std::make_unique<FailingUdf>(); }, {});
  EXPECT_TRUE(result.status().IsInternal());
}

TEST(ProcedureTest, RegisterAndCall) {
  ProcedureRegistry registry;
  Catalog catalog;
  VX_CHECK_OK(catalog.CreateTable(
      "counter", Table(Schema({{"v", DataType::kInt64}}))));

  VX_CHECK_OK(registry.Register(
      "bump", [](Catalog* cat, const std::vector<Value>& params) -> Status {
        VX_ASSIGN_OR_RETURN(auto t, cat->GetTable("counter"));
        Table next = *t;
        VX_RETURN_NOT_OK(next.AppendRow({params.at(0)}));
        return cat->ReplaceTable("counter", std::move(next));
      }));

  EXPECT_TRUE(registry.Has("bump"));
  VX_CHECK_OK(registry.Call("bump", &catalog, {Value(int64_t{7})}));
  VX_CHECK_OK(registry.Call("bump", &catalog, {Value(int64_t{8})}));
  auto t = *catalog.GetTable("counter");
  ASSERT_EQ(t->num_rows(), 2);
  EXPECT_EQ(t->column(0).GetInt64(1), 8);
}

TEST(ProcedureTest, DuplicateRegistrationFails) {
  ProcedureRegistry registry;
  VX_CHECK_OK(registry.Register("p", [](Catalog*, const std::vector<Value>&) {
    return Status::OK();
  }));
  EXPECT_TRUE(registry
                  .Register("p", [](Catalog*, const std::vector<Value>&) {
                    return Status::OK();
                  })
                  .IsAlreadyExists());
}

TEST(ProcedureTest, UnknownProcedureFails) {
  ProcedureRegistry registry;
  Catalog catalog;
  EXPECT_TRUE(registry.Call("nope", &catalog).IsNotFound());
}

}  // namespace
}  // namespace vertexica
