// Tests for the Vertexica core: graph tables, the worker UDF, the
// coordinator superstep loop, and the §2.3 optimizations.

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/pagerank.h"
#include "algorithms/reference.h"
#include "algorithms/sssp.h"
#include "exec/frontier.h"
#include "exec/merge_join.h"
#include "graphgen/generators.h"
#include "storage/partition.h"
#include "vertexica/coordinator.h"
#include "vertexica/graph_tables.h"
#include "vertexica/worker.h"

namespace vertexica {
namespace {

// A tiny weighted digraph used across tests:
//   0 -> 1 (1), 0 -> 2 (4), 1 -> 2 (2), 2 -> 3 (1), 1 -> 3 (7)
Graph Diamond() {
  Graph g;
  g.num_vertices = 4;
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(0, 2, 4.0);
  g.AddEdge(1, 2, 2.0);
  g.AddEdge(2, 3, 1.0);
  g.AddEdge(1, 3, 7.0);
  return g;
}

TEST(GraphTablesTest, SchemasMatchPaperLayout) {
  Schema v = MakeVertexSchema(2);
  EXPECT_EQ(v.num_fields(), 4);  // id, halted, v0, v1
  EXPECT_EQ(v.field(0).name, "id");
  EXPECT_EQ(v.field(1).name, "halted");
  Schema e = MakeEdgeSchema();
  EXPECT_EQ(e.num_fields(), 3);  // src, dst, weight
  Schema m = MakeMessageSchema(1);
  EXPECT_EQ(m.num_fields(), 3);  // src (sender), dst (receiver), m0
  Schema u = MakeUnionSchema(2);
  EXPECT_EQ(u.num_fields(), 6);  // id, kind, other, halted, p0, p1
}

TEST(GraphTablesTest, LoadCreatesThreeTables) {
  Catalog cat;
  PageRankProgram program(3);
  ASSERT_TRUE(LoadGraphTables(&cat, Diamond(), program).ok());
  EXPECT_EQ(*cat.RowCount("vertex"), 4);
  EXPECT_EQ(*cat.RowCount("edge"), 5);
  EXPECT_EQ(*cat.RowCount("message"), 0);
  auto vertex = *cat.GetTable("vertex");
  // Initial rank = 1/N, halted = false.
  EXPECT_DOUBLE_EQ(vertex->ColumnByName("v0")->GetDouble(0), 0.25);
  EXPECT_FALSE(vertex->ColumnByName("halted")->GetBool(0));
  auto edge = *cat.GetTable("edge");
  EXPECT_DOUBLE_EQ(edge->ColumnByName("weight")->GetDouble(1), 4.0);
}

TEST(GraphTablesTest, ReadVertexValuesDense) {
  Catalog cat;
  ShortestPathProgram program(0);
  ASSERT_TRUE(LoadGraphTables(&cat, Diamond(), program).ok());
  auto vals = ReadVertexValues(cat, {});
  ASSERT_TRUE(vals.ok());
  ASSERT_EQ(vals->size(), 4u);
  EXPECT_DOUBLE_EQ((*vals)[0], 0.0);
  EXPECT_TRUE(std::isinf((*vals)[1]));
}

TEST(GraphTablesTest, WithRowNumbers) {
  Table t(Schema({{"x", DataType::kInt64}}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{9})}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{8})}));
  Table seq = WithRowNumbers(t, "seq");
  EXPECT_EQ(seq.num_columns(), 2);
  EXPECT_EQ(seq.ColumnByName("seq")->GetInt64(0), 0);
  EXPECT_EQ(seq.ColumnByName("seq")->GetInt64(1), 1);
}

TEST(PageRankVertexCentricTest, MatchesReference) {
  Graph g = Diamond();
  Catalog cat;
  auto ranks = RunPageRank(&cat, g, /*iters=*/10);
  ASSERT_TRUE(ranks.ok()) << ranks.status().ToString();
  auto expect = PageRankReference(g, 10);
  ASSERT_EQ(ranks->size(), expect.size());
  for (size_t v = 0; v < expect.size(); ++v) {
    EXPECT_NEAR((*ranks)[v], expect[v], 1e-9) << "vertex " << v;
  }
}

TEST(PageRankVertexCentricTest, MatchesReferenceOnRandomGraph) {
  Graph g = GenerateRmat(200, 1500, 17);
  Catalog cat;
  auto ranks = RunPageRank(&cat, g, 8);
  ASSERT_TRUE(ranks.ok());
  auto expect = PageRankReference(g, 8);
  for (size_t v = 0; v < expect.size(); ++v) {
    EXPECT_NEAR((*ranks)[v], expect[v], 1e-9);
  }
}

TEST(PageRankVertexCentricTest, StatsRecordSupersteps) {
  Graph g = Diamond();
  Catalog cat;
  RunStats stats;
  auto ranks = RunPageRank(&cat, g, 5, 0.85, {}, &stats);
  ASSERT_TRUE(ranks.ok());
  // iterations 0..5 compute, then one final no-op check.
  EXPECT_EQ(stats.num_supersteps(), 6);
  EXPECT_GT(stats.total_messages, 0);
  EXPECT_EQ(stats.supersteps[0].active_vertices, 4);
}

TEST(PageRankVertexCentricTest, PhaseBreakdownSumsToStepTime) {
  Graph g = GenerateRmat(128, 900, 18);
  Catalog cat;
  RunStats stats;
  ASSERT_TRUE(RunPageRank(&cat, g, 4, 0.85, {}, &stats).ok());
  for (const auto& s : stats.supersteps) {
    const double phases = s.input_seconds + s.worker_seconds +
                          s.split_seconds + s.apply_seconds;
    EXPECT_GT(phases, 0.0);
    EXPECT_LE(phases, s.seconds * 1.05 + 1e-3);
    EXPECT_GT(s.input_rows, 0);
  }
}

TEST(SsspVertexCentricTest, MatchesDijkstra) {
  Graph g = Diamond();
  Catalog cat;
  auto dist = RunShortestPaths(&cat, g, 0);
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();
  auto expect = DijkstraReference(g, 0);
  ASSERT_EQ(dist->size(), expect.size());
  for (size_t v = 0; v < expect.size(); ++v) {
    EXPECT_DOUBLE_EQ((*dist)[v], expect[v]) << "vertex " << v;
  }
  EXPECT_DOUBLE_EQ((*dist)[3], 4.0);  // 0->1->2->3 = 1+2+1
}

TEST(SsspVertexCentricTest, UnreachableStaysInfinite) {
  Graph g;
  g.num_vertices = 3;
  g.AddEdge(0, 1, 1.0);
  Catalog cat;
  auto dist = RunShortestPaths(&cat, g, 0);
  ASSERT_TRUE(dist.ok());
  EXPECT_TRUE(std::isinf((*dist)[2]));
}

TEST(SsspVertexCentricTest, MessageDrivenHaltsEarly) {
  Graph g = Diamond();
  Catalog cat;
  RunStats stats;
  auto dist = RunShortestPaths(&cat, g, 0, {}, &stats);
  ASSERT_TRUE(dist.ok());
  // Diamond has diameter 3; the run should finish in a handful of
  // supersteps, not the max cap.
  EXPECT_LE(stats.num_supersteps(), 6);
}

TEST(OptimizationTest, JoinInputMatchesUnionInput) {
  Graph g = GenerateRmat(128, 800, 5);
  VertexicaOptions union_opts;
  union_opts.use_union_input = true;
  VertexicaOptions join_opts;
  join_opts.use_union_input = false;

  Catalog cat1;
  auto r1 = RunPageRank(&cat1, g, 5, 0.85, union_opts);
  Catalog cat2;
  auto r2 = RunPageRank(&cat2, g, 5, 0.85, join_opts);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  ASSERT_EQ(r1->size(), r2->size());
  for (size_t v = 0; v < r1->size(); ++v) {
    EXPECT_NEAR((*r1)[v], (*r2)[v], 1e-9);
  }
}

TEST(OptimizationTest, JoinInputMatchesUnionInputForSssp) {
  Graph g = GenerateRmat(128, 800, 6);
  AssignRandomWeights(&g, 1.0, 5.0, 7);
  VertexicaOptions join_opts;
  join_opts.use_union_input = false;
  Catalog cat1;
  auto d1 = RunShortestPaths(&cat1, g, 0);
  Catalog cat2;
  auto d2 = RunShortestPaths(&cat2, g, 0, join_opts);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  for (size_t v = 0; v < d1->size(); ++v) {
    EXPECT_DOUBLE_EQ((*d1)[v], (*d2)[v]);
  }
}

TEST(OptimizationTest, CombinerOnOffSameResult) {
  Graph g = GenerateRmat(128, 800, 8);
  VertexicaOptions no_comb;
  no_comb.use_combiner = false;
  Catalog cat1;
  auto r1 = RunPageRank(&cat1, g, 5);
  Catalog cat2;
  auto r2 = RunPageRank(&cat2, g, 5, 0.85, no_comb);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  for (size_t v = 0; v < r1->size(); ++v) {
    EXPECT_NEAR((*r1)[v], (*r2)[v], 1e-9);
  }
}

TEST(OptimizationTest, CombinerShrinksMessageTable) {
  Graph g = GenerateRmat(128, 2000, 9);
  VertexicaOptions with_comb;
  with_comb.use_combiner = true;
  VertexicaOptions no_comb;
  no_comb.use_combiner = false;
  Catalog cat1;
  RunStats s1;
  ASSERT_TRUE(RunPageRank(&cat1, g, 4, 0.85, with_comb, &s1).ok());
  Catalog cat2;
  RunStats s2;
  ASSERT_TRUE(RunPageRank(&cat2, g, 4, 0.85, no_comb, &s2).ok());
  EXPECT_LT(s1.total_messages, s2.total_messages);
}

TEST(OptimizationTest, UpdateVsReplaceSameResult) {
  Graph g = GenerateRmat(128, 900, 10);
  VertexicaOptions always_update;
  always_update.update_threshold = 1.1;  // always in-place
  VertexicaOptions always_replace;
  always_replace.update_threshold = 0.0;  // always rebuild
  Catalog cat1;
  auto r1 = RunPageRank(&cat1, g, 5, 0.85, always_update);
  Catalog cat2;
  auto r2 = RunPageRank(&cat2, g, 5, 0.85, always_replace);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  for (size_t v = 0; v < r1->size(); ++v) {
    EXPECT_NEAR((*r1)[v], (*r2)[v], 1e-9);
  }
}

TEST(OptimizationTest, ReplaceDecisionFollowsThreshold) {
  Graph g = Diamond();
  Catalog cat;
  RunStats stats;
  VertexicaOptions opts;
  opts.update_threshold = 0.0;  // force replace
  ASSERT_TRUE(RunPageRank(&cat, g, 3, 0.85, opts, &stats).ok());
  for (const auto& s : stats.supersteps) {
    if (s.vertex_updates > 0) {
      EXPECT_TRUE(s.used_replace);
    }
  }
  Catalog cat2;
  RunStats stats2;
  opts.update_threshold = 1.1;  // force in-place
  ASSERT_TRUE(RunPageRank(&cat2, g, 3, 0.85, opts, &stats2).ok());
  for (const auto& s : stats2.supersteps) {
    EXPECT_FALSE(s.used_replace);
  }
}

TEST(OptimizationTest, WorkerAndPartitionCountsDontChangeResults) {
  Graph g = GenerateRmat(128, 700, 11);
  std::vector<double> base;
  for (int workers : {1, 2, 4}) {
    for (int partitions : {0, 1, 8}) {
      VertexicaOptions opts;
      opts.num_workers = workers;
      opts.num_partitions = partitions;
      Catalog cat;
      auto r = RunPageRank(&cat, g, 4, 0.85, opts);
      ASSERT_TRUE(r.ok());
      if (base.empty()) {
        base = *r;
      } else {
        for (size_t v = 0; v < base.size(); ++v) {
          EXPECT_NEAR((*r)[v], base[v], 1e-9);
        }
      }
    }
  }
}

TEST(CoordinatorTest, AggregatorTracksRankMass) {
  Graph g = GenerateRmat(100, 600, 12);
  PageRankProgram program(4);
  Catalog cat;
  ASSERT_TRUE(LoadGraphTables(&cat, g, program).ok());
  Coordinator coord(&cat, &program);
  ASSERT_TRUE(coord.Run().ok());
  // Total rank mass stays near 1 (dangling vertices leak a little).
  auto it = coord.aggregates().find("pagerank_mass");
  ASSERT_NE(it, coord.aggregates().end());
  EXPECT_GT(it->second, 0.3);
  EXPECT_LE(it->second, 1.01);
}

TEST(CoordinatorTest, MaxSuperstepsBounds) {
  Graph g = Diamond();
  PageRankProgram program(1000);  // would run long
  Catalog cat;
  ASSERT_TRUE(LoadGraphTables(&cat, g, program).ok());
  VertexicaOptions opts;
  opts.max_supersteps = 3;
  RunStats stats;
  Coordinator coord(&cat, &program, opts);
  ASSERT_TRUE(coord.Run(&stats).ok());
  EXPECT_EQ(stats.num_supersteps(), 3);
}

TEST(CoordinatorTest, EmptyGraphTerminatesImmediately) {
  Graph g;
  g.num_vertices = 3;  // no edges
  Catalog cat;
  auto dist = RunShortestPaths(&cat, g, 0);
  ASSERT_TRUE(dist.ok());
  EXPECT_DOUBLE_EQ((*dist)[0], 0.0);
  EXPECT_TRUE(std::isinf((*dist)[1]));
}

TEST(WorkerTest, RunnerSkipsInactiveVertex) {
  PageRankProgram program(2);
  WorkerSharedState shared;
  shared.program = &program;
  shared.superstep = 1;  // not superstep 0
  shared.num_vertices = 10;
  shared.payload_arity = 1;
  std::map<std::string, double> prev;
  shared.prev_aggregates = &prev;

  VertexRunner runner(&shared);
  UnionRowBuffer out(1);
  const double value = 0.1;
  runner.BeginVertex(5, /*halted=*/true, &value);  // halted, no messages
  EXPECT_FALSE(runner.FinishVertex(&out));
  EXPECT_TRUE(out.id.empty());
}

TEST(WorkerTest, RunnerReactivatesOnMessage) {
  ShortestPathProgram program(0);
  WorkerSharedState shared;
  shared.program = &program;
  shared.superstep = 2;
  shared.num_vertices = 10;
  shared.payload_arity = 1;
  std::map<std::string, double> prev;
  shared.prev_aggregates = &prev;

  VertexRunner runner(&shared);
  UnionRowBuffer out(1);
  const double inf = std::numeric_limits<double>::infinity();
  runner.BeginVertex(5, /*halted=*/true, &inf);
  runner.AddEdge(6, 1.0);
  const double msg = 3.0;
  runner.AddMessage(&msg);
  EXPECT_TRUE(runner.FinishVertex(&out));
  // Vertex row with changed state + one relaxation message to vertex 6.
  ASSERT_EQ(out.id.size(), 2u);
  EXPECT_EQ(out.kind[0], kVertexTuple);
  EXPECT_DOUBLE_EQ(out.payload[0][0], 3.0);
  EXPECT_EQ(out.kind[1], kMessageTuple);
  EXPECT_EQ(out.id[1], 6);
  EXPECT_DOUBLE_EQ(out.payload[0][1], 4.0);
}

// ---------------------------------------------------------------------------
// Order-aware superstep joins (exec/merge_join.h): with the join-input
// path, the sorted invariants (vertex by id, message by dst, edges by
// (src, dst)) turn both superstep joins into merge joins — zero hash
// builds — with results bit-identical to the hash path.
// ---------------------------------------------------------------------------

TEST(OptimizationTest, JoinInputRunsMergeJoinsOnly) {
  ScopedMergeJoin on(true);  // pin against a VERTEXICA_MERGE_JOIN=off env
  ScopedExecShards unsharded(1);  // exact per-step counters assume 1 shard
  Graph g = GenerateRmat(128, 800, 11);
  VertexicaOptions opts;
  opts.use_union_input = false;
  opts.update_threshold = 2.0;  // always in-place: no rebuild-path joins
  Catalog cat;
  RunStats stats;
  auto r = RunPageRank(&cat, g, 5, 0.85, opts, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_GT(stats.supersteps.size(), 1u);
  for (const SuperstepStats& s : stats.supersteps) {
    // BuildJoinInput's vertex ⟕ message and ⟕ edge joins, merged.
    EXPECT_EQ(s.merge_joins, 2) << "superstep " << s.superstep;
    EXPECT_EQ(s.hash_joins, 0) << "superstep " << s.superstep;
    EXPECT_GT(s.join_rows, 0) << "superstep " << s.superstep;
  }
}

TEST(OptimizationTest, MergeJoinOnOffSameResult) {
  ScopedMergeJoin on(true);  // pin against a VERTEXICA_MERGE_JOIN=off env
  Graph g = GenerateRmat(128, 800, 12);
  VertexicaOptions merge_opts;
  merge_opts.use_union_input = false;
  VertexicaOptions hash_opts;
  hash_opts.use_union_input = false;
  hash_opts.use_merge_join = false;
  Catalog cat1;
  RunStats s1;
  auto r1 = RunPageRank(&cat1, g, 5, 0.85, merge_opts, &s1);
  Catalog cat2;
  RunStats s2;
  auto r2 = RunPageRank(&cat2, g, 5, 0.85, hash_opts, &s2);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  ASSERT_EQ(r1->size(), r2->size());
  for (size_t v = 0; v < r1->size(); ++v) {
    // Bit-identical, not just close: the merge join reproduces the hash
    // join's probe-row-major match order exactly.
    EXPECT_EQ((*r1)[v], (*r2)[v]) << "vertex " << v;
  }
  ASSERT_EQ(s1.supersteps.size(), s2.supersteps.size());
  int64_t merged = 0;
  int64_t hashed = 0;
  for (const SuperstepStats& s : s1.supersteps) merged += s.merge_joins;
  for (const SuperstepStats& s : s2.supersteps) {
    hashed += s.hash_joins;
    EXPECT_EQ(s.merge_joins, 0);  // the ablation switch pins the hash path
  }
  EXPECT_GT(merged, 0);
  EXPECT_GT(hashed, 0);
}

TEST(OptimizationTest, MergeJoinSurvivesReplacePath) {
  // update_threshold = 0 forces the rebuild path every superstep; the
  // coordinator re-sorts the rebuilt vertex table, so merge joins keep
  // running and results still match the in-place path.
  ScopedMergeJoin on(true);  // pin against a VERTEXICA_MERGE_JOIN=off env
  ScopedExecShards unsharded(1);  // exact per-step counters assume 1 shard
  Graph g = GenerateRmat(64, 400, 13);
  VertexicaOptions replace_opts;
  replace_opts.use_union_input = false;
  replace_opts.update_threshold = 0.0;
  Catalog cat1;
  RunStats s1;
  auto r1 = RunPageRank(&cat1, g, 4, 0.85, replace_opts, &s1);
  VertexicaOptions inplace_opts;
  inplace_opts.use_union_input = false;
  inplace_opts.update_threshold = 2.0;
  Catalog cat2;
  auto r2 = RunPageRank(&cat2, g, 4, 0.85, inplace_opts);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  for (size_t v = 0; v < r1->size(); ++v) {
    EXPECT_EQ((*r1)[v], (*r2)[v]) << "vertex " << v;
  }
  for (const SuperstepStats& s : s1.supersteps) {
    EXPECT_EQ(s.merge_joins, 2) << "superstep " << s.superstep;
    // The rebuild's anti join (unsorted build side) may hash; the two
    // superstep input joins must not.
    EXPECT_LE(s.hash_joins, 1) << "superstep " << s.superstep;
  }
}

TEST(OptimizationTest, MergeJoinSameResultForSssp) {
  Graph g = GenerateRmat(128, 800, 14);
  AssignRandomWeights(&g, 1.0, 5.0, 15);
  VertexicaOptions merge_opts;
  merge_opts.use_union_input = false;
  VertexicaOptions hash_opts;
  hash_opts.use_union_input = false;
  hash_opts.use_merge_join = false;
  Catalog cat1;
  auto d1 = RunShortestPaths(&cat1, g, 0, merge_opts);
  Catalog cat2;
  auto d2 = RunShortestPaths(&cat2, g, 0, hash_opts);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  for (size_t v = 0; v < d1->size(); ++v) {
    EXPECT_EQ((*d1)[v], (*d2)[v]) << "vertex " << v;
  }
}

// ---------------------------------------------------------------------------
// Persistent vertex-id sharding (storage/partition.h): with num_shards > 1
// the coordinator partitions the graph tables once per run, keeps shards
// resident, and only exchanges cross-shard messages between supersteps.
// Shards are contiguous blocks of the vertex-batching partitions, so
// results are bit-identical at any shard count — on both input paths, at
// any thread count.
// ---------------------------------------------------------------------------

TEST(ShardingTest, ShardedPageRankBitIdenticalAtAnyShardCount) {
  Graph g = GenerateRmat(200, 1500, 21);
  for (const bool union_input : {true, false}) {
    VertexicaOptions base;
    base.use_union_input = union_input;
    Catalog cat0;
    auto unsharded = RunPageRank(&cat0, g, 6, 0.85, base);
    ASSERT_TRUE(unsharded.ok()) << unsharded.status().ToString();
    for (const int shards : {1, 2, 8}) {
      VertexicaOptions opts = base;
      opts.num_shards = shards;
      Catalog cat;
      RunStats stats;
      auto sharded = RunPageRank(&cat, g, 6, 0.85, opts, &stats);
      ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
      ASSERT_EQ(sharded->size(), unsharded->size());
      for (size_t v = 0; v < unsharded->size(); ++v) {
        EXPECT_EQ((*sharded)[v], (*unsharded)[v])
            << (union_input ? "union" : "join") << " input, shards="
            << shards << ", vertex " << v;
      }
      for (const SuperstepStats& s : stats.supersteps) {
        EXPECT_EQ(s.shards, shards);
      }
    }
  }
}

TEST(ShardingTest, ShardedSsspBitIdenticalAcrossThreadCounts) {
  Graph g = GenerateRmat(150, 900, 22);
  AssignRandomWeights(&g, 1.0, 5.0, 23);
  Catalog cat0;
  auto unsharded = RunShortestPaths(&cat0, g, 0, {});
  ASSERT_TRUE(unsharded.ok()) << unsharded.status().ToString();
  for (const int threads : {1, 4}) {
    ScopedExecThreads scoped(threads);
    VertexicaOptions opts;
    opts.num_shards = 4;
    Catalog cat;
    auto sharded = RunShortestPaths(&cat, g, 0, opts);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    ASSERT_EQ(sharded->size(), unsharded->size());
    for (size_t v = 0; v < unsharded->size(); ++v) {
      EXPECT_EQ((*sharded)[v], (*unsharded)[v])
          << "threads=" << threads << ", vertex " << v;
    }
  }
}

TEST(ShardingTest, PerShardCountersReported) {
  Graph g = GenerateRmat(200, 1200, 24);
  VertexicaOptions opts;
  opts.num_shards = 4;
  Catalog cat;
  RunStats stats;
  auto r = RunPageRank(&cat, g, 5, 0.85, opts, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_GT(stats.supersteps.size(), 1u);
  bool any_cross_shard = false;
  for (const SuperstepStats& s : stats.supersteps) {
    EXPECT_EQ(s.shards, 4);
    ASSERT_EQ(s.shard_input_rows.size(), 4u);
    ASSERT_EQ(s.shard_messages.size(), 4u);
    int64_t input_sum = 0;
    for (int64_t rows : s.shard_input_rows) input_sum += rows;
    EXPECT_EQ(input_sum, s.input_rows);
    int64_t message_sum = 0;
    for (int64_t rows : s.shard_messages) message_sum += rows;
    EXPECT_EQ(message_sum, s.messages_sent);
    if (s.cross_shard_messages > 0) any_cross_shard = true;
  }
  // An RMAT graph connects vertices across hash blocks, so some messages
  // must cross shards.
  EXPECT_TRUE(any_cross_shard);
  const std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"shards\":4"), std::string::npos);
  EXPECT_NE(json.find("\"shard_input_rows\":["), std::string::npos);
  EXPECT_NE(json.find("\"cross_shard_messages\":"), std::string::npos);
}

TEST(ShardingTest, AmbientShardsKnobResolvesLikeThreads) {
  Graph g = Diamond();
  {
    ScopedExecShards scoped(2);
    Catalog cat;
    RunStats stats;
    ASSERT_TRUE(RunPageRank(&cat, g, 3, 0.85, {}, &stats).ok());
    ASSERT_FALSE(stats.supersteps.empty());
    EXPECT_EQ(stats.supersteps[0].shards, 2);
  }
  {
    // An explicit option wins over the ambient knob, like num_workers
    // vs. the threads knob.
    ScopedExecShards scoped(2);
    VertexicaOptions opts;
    opts.num_shards = 3;
    Catalog cat;
    RunStats stats;
    ASSERT_TRUE(RunPageRank(&cat, g, 3, 0.85, opts, &stats).ok());
    ASSERT_FALSE(stats.supersteps.empty());
    EXPECT_EQ(stats.supersteps[0].shards, 3);
  }
  {
    // Unsharded runs report shards = 1 with empty per-shard vectors.
    ScopedExecShards unsharded(1);  // pin against a VERTEXICA_SHARDS env
    Catalog cat;
    RunStats stats;
    ASSERT_TRUE(RunPageRank(&cat, g, 3, 0.85, {}, &stats).ok());
    ASSERT_FALSE(stats.supersteps.empty());
    EXPECT_EQ(stats.supersteps[0].shards, 1);
    EXPECT_TRUE(stats.supersteps[0].shard_input_rows.empty());
  }
}

TEST(ShardingTest, ShardedMergeJoinStillMergesOnly) {
  ScopedMergeJoin on(true);  // pin against a VERTEXICA_MERGE_JOIN=off env
  Graph g = GenerateRmat(128, 800, 25);
  VertexicaOptions opts;
  opts.use_union_input = false;
  opts.update_threshold = 2.0;  // in-place: no rebuild-path joins
  opts.num_shards = 4;
  Catalog cat;
  RunStats stats;
  auto r = RunPageRank(&cat, g, 5, 0.85, opts, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  for (const SuperstepStats& s : stats.supersteps) {
    // Two input-build joins per shard, all merged: the per-shard tables
    // keep the sorted invariants (vertex by id, message by dst, edges by
    // (src, dst)) the planner needs.
    EXPECT_EQ(s.merge_joins, 2 * 4) << "superstep " << s.superstep;
    EXPECT_EQ(s.hash_joins, 0) << "superstep " << s.superstep;
  }
}

// ---------------------------------------------------------------------------
// Active-vertex frontier supersteps (exec/frontier.h): the worker input is
// gathered from a per-(shard-)table bitvector of non-halted vertices and
// message receivers plus CSR edge slices instead of full scans. The
// contract under test: bit-identical to the dense path at any mode × shard
// count × thread count, on both input paths.
// ---------------------------------------------------------------------------

Graph ChainGraph(int64_t n) {
  Graph g;
  g.num_vertices = n;
  for (int64_t v = 0; v + 1 < n; ++v) g.AddEdge(v, v + 1, 1.0);
  return g;
}

TEST(FrontierTest, PageRankBitIdenticalAcrossModes) {
  Graph g = GenerateRmat(200, 1500, 31);
  for (const bool union_input : {true, false}) {
    VertexicaOptions opts;
    opts.use_union_input = union_input;
    // In-place updates preserve the vertex table's declared id order — the
    // frontier's structural precondition — on both input paths. (PageRank
    // updates every vertex, so the default threshold would take the
    // replace path, whose union-path rebuild legitimately goes dense.)
    opts.update_threshold = 2.0;
    Catalog cat0;
    std::vector<double> dense;
    {
      ScopedFrontierMode off(FrontierMode::kOff);
      auto r = RunPageRank(&cat0, g, 6, 0.85, opts);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      dense = *r;
    }
    for (const FrontierMode mode : {FrontierMode::kOn, FrontierMode::kAuto}) {
      ScopedFrontierMode scoped(mode);
      Catalog cat;
      RunStats stats;
      auto r = RunPageRank(&cat, g, 6, 0.85, opts, &stats);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      ASSERT_EQ(r->size(), dense.size());
      for (size_t v = 0; v < dense.size(); ++v) {
        EXPECT_EQ((*r)[v], dense[v])
            << (union_input ? "union" : "join") << " input, mode="
            << FrontierModeName(mode) << ", vertex " << v;
      }
      EXPECT_EQ(stats.frontier_supersteps + stats.dense_supersteps,
                static_cast<int64_t>(stats.supersteps.size()));
      if (mode == FrontierMode::kOn) {
        // Forced mode: every superstep past the first takes the sparse
        // path (superstep 0 is dense by definition).
        for (const SuperstepStats& s : stats.supersteps) {
          EXPECT_EQ(s.used_frontier, s.superstep > 0)
              << (union_input ? "union" : "join") << " input, superstep "
              << s.superstep;
        }
        EXPECT_GT(stats.frontier_supersteps, 0);
      }
    }
  }
}

TEST(FrontierTest, SsspBitIdenticalAcrossModesShardsAndThreads) {
  Graph g = GenerateRmat(150, 900, 32);
  AssignRandomWeights(&g, 1.0, 5.0, 33);
  Catalog cat0;
  std::vector<double> dense;
  {
    ScopedFrontierMode off(FrontierMode::kOff);
    auto r = RunShortestPaths(&cat0, g, 0);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    dense = *r;
  }
  for (const FrontierMode mode : {FrontierMode::kOn, FrontierMode::kAuto}) {
    for (const int shards : {1, 2, 8}) {
      ScopedFrontierMode scoped(mode);
      VertexicaOptions opts;
      opts.num_shards = shards;
      Catalog cat;
      auto r = RunShortestPaths(&cat, g, 0, opts);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      ASSERT_EQ(r->size(), dense.size());
      for (size_t v = 0; v < dense.size(); ++v) {
        EXPECT_EQ((*r)[v], dense[v])
            << "mode=" << FrontierModeName(mode) << ", shards=" << shards
            << ", vertex " << v;
      }
    }
  }
  for (const int threads : {1, 4}) {
    ScopedExecThreads scoped_threads(threads);
    ScopedFrontierMode on(FrontierMode::kOn);
    VertexicaOptions opts;
    opts.num_shards = 2;
    Catalog cat;
    auto r = RunShortestPaths(&cat, g, 0, opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    for (size_t v = 0; v < dense.size(); ++v) {
      EXPECT_EQ((*r)[v], dense[v])
          << "threads=" << threads << ", vertex " << v;
    }
  }
}

TEST(FrontierTest, AutoModeGoesSparseOnLongTail) {
  // SSSP on a chain: after superstep 0 every vertex is halted and exactly
  // one message is in flight, so the active fraction is 1/n — far below
  // the auto threshold. `auto` must take the sparse path on its own and
  // report it.
  Graph g = ChainGraph(100);
  ScopedFrontierMode automatic(FrontierMode::kAuto);
  ScopedExecShards unsharded(1);  // pin against a VERTEXICA_SHARDS env
  Catalog cat;
  RunStats stats;
  auto r = RunShortestPaths(&cat, g, 0, {}, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  for (size_t v = 0; v < r->size(); ++v) {
    EXPECT_DOUBLE_EQ((*r)[v], static_cast<double>(v));
  }
  ASSERT_GT(stats.supersteps.size(), 2u);
  EXPECT_FALSE(stats.supersteps[0].used_frontier);  // superstep 0 is dense
  EXPECT_GT(stats.frontier_supersteps, 0);
  for (const SuperstepStats& s : stats.supersteps) {
    if (!s.used_frontier) continue;
    // The chain frontier is one receiver (plus no stragglers).
    EXPECT_GE(s.frontier_vertices, 1) << "superstep " << s.superstep;
    EXPECT_LE(s.frontier_vertices, 2) << "superstep " << s.superstep;
  }
  EXPECT_EQ(stats.frontier_supersteps + stats.dense_supersteps,
            static_cast<int64_t>(stats.supersteps.size()));
  const std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"frontier_supersteps\":"), std::string::npos);
  EXPECT_NE(json.find("\"used_frontier\":true"), std::string::npos);
  EXPECT_NE(json.find("\"frontier_vertices\":"), std::string::npos);
}

TEST(FrontierTest, OffModeNeverTakesTheSparsePath) {
  Graph g = ChainGraph(50);
  ScopedFrontierMode off(FrontierMode::kOff);
  Catalog cat;
  RunStats stats;
  auto r = RunShortestPaths(&cat, g, 0, {}, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(stats.frontier_supersteps, 0);
  EXPECT_EQ(stats.dense_supersteps,
            static_cast<int64_t>(stats.supersteps.size()));
  for (const SuperstepStats& s : stats.supersteps) {
    EXPECT_FALSE(s.used_frontier);
    EXPECT_EQ(s.frontier_vertices, 0);
  }
}

TEST(WorkerTest, UnionBufferToTable) {
  UnionRowBuffer buf(2);
  const double p[2] = {1.5, 2.5};
  buf.AppendRow(7, kMessageTuple, 3, false, p, 2);
  Table t = buf.ToTable();
  EXPECT_EQ(t.num_rows(), 1);
  EXPECT_EQ(t.ColumnByName("id")->GetInt64(0), 7);
  EXPECT_DOUBLE_EQ(t.ColumnByName("p1")->GetDouble(0), 2.5);
  // Buffer is reusable after ToTable.
  buf.AppendRow(1, kVertexTuple, 0, true, p, 1);
  Table t2 = buf.ToTable();
  EXPECT_EQ(t2.num_rows(), 1);
  EXPECT_DOUBLE_EQ(t2.ColumnByName("p1")->GetDouble(0), 0.0);  // padded
}

TEST(InvariantAuditTest, CatalogTablesPassDeepAuditAfterRuns) {
  // End-to-end audit coverage: the tables a finished run publishes —
  // sort-order declarations, segment encodings, zone maps included — must
  // withstand the same CheckInvariants the VX_DCHECK tier applies at every
  // phase boundary, on both the unsharded and sharded dataflows.
  Graph g = GenerateRmat(120, 600, 17);
  for (int shards : {0, 3}) {
    ScopedExecShards scoped(shards);
    Catalog cat;
    ASSERT_TRUE(RunPageRank(&cat, g, 6).ok());
    for (const char* const name : {"vertex", "edge", "message"}) {
      auto table = cat.GetTable(name);
      ASSERT_TRUE(table.ok()) << name;
      const Status st = (*table)->CheckInvariants();
      EXPECT_TRUE(st.ok()) << name << " (shards=" << shards
                           << "): " << st.ToString();
    }
  }
}

}  // namespace
}  // namespace vertexica
