// Tests for the remaining vertex-centric algorithms (connected components,
// collaborative filtering, random walk with restart) and the textbook
// references themselves.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "algorithms/collaborative_filtering.h"
#include "algorithms/connected_components.h"
#include "algorithms/random_walk.h"
#include "algorithms/reference.h"
#include "algorithms/triangle_program.h"
#include "graphgen/generators.h"

namespace vertexica {
namespace {

TEST(WccReferenceTest, TwoComponents) {
  Graph g;
  g.num_vertices = 5;
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  auto labels = WccReference(g);
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[1], 0);
  EXPECT_EQ(labels[2], 0);
  EXPECT_EQ(labels[3], 3);
  EXPECT_EQ(labels[4], 3);
}

TEST(ConnectedComponentsTest, MatchesUnionFind) {
  Graph g;
  g.num_vertices = 8;
  g.AddEdge(0, 1);
  g.AddEdge(2, 1);  // direction must not matter
  g.AddEdge(3, 4);
  g.AddEdge(5, 4);
  g.AddEdge(6, 7);
  Catalog cat;
  auto labels = RunConnectedComponents(&cat, g);
  ASSERT_TRUE(labels.ok()) << labels.status().ToString();
  auto expect = WccReference(g);
  EXPECT_EQ(*labels, expect);
}

TEST(ConnectedComponentsTest, RandomGraphMatchesReference) {
  Graph g = GenerateErdosRenyi(300, 350, 21);  // sparse => many components
  Catalog cat;
  auto labels = RunConnectedComponents(&cat, g);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ(*labels, WccReference(g));
}

TEST(ConnectedComponentsTest, SingletonVerticesKeepOwnLabel) {
  Graph g;
  g.num_vertices = 4;
  g.AddEdge(0, 1);
  Catalog cat;
  auto labels = RunConnectedComponents(&cat, g);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ((*labels)[2], 2);
  EXPECT_EQ((*labels)[3], 3);
}

TEST(TriangleReferenceTest, CountsKnownGraph) {
  Graph g;
  g.num_vertices = 5;
  // Triangle 0-1-2 plus a pendant and the extra triangle 1-2-3.
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  EXPECT_EQ(TriangleCountReference(g), 2);
  auto per = PerVertexTrianglesReference(g);
  EXPECT_EQ(per[0], 1);
  EXPECT_EQ(per[1], 2);
  EXPECT_EQ(per[2], 2);
  EXPECT_EQ(per[3], 1);
  EXPECT_EQ(per[4], 0);
}

TEST(TriangleReferenceTest, IgnoresDuplicatesAndDirections) {
  Graph g;
  g.num_vertices = 3;
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);  // duplicate in other direction
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  EXPECT_EQ(TriangleCountReference(g), 1);
}

TEST(CollaborativeFilteringTest, ErrorDecreasesOverTraining) {
  Graph ratings = GenerateBipartite(40, 15, 400, 33);
  Catalog cat_short;
  auto short_model =
      RunCollaborativeFiltering(&cat_short, ratings, 4, /*iters=*/1);
  ASSERT_TRUE(short_model.ok()) << short_model.status().ToString();
  Catalog cat_long;
  auto long_model =
      RunCollaborativeFiltering(&cat_long, ratings, 4, /*iters=*/15);
  ASSERT_TRUE(long_model.ok());
  EXPECT_LT(long_model->squared_error, short_model->squared_error);
}

TEST(CollaborativeFilteringTest, PredictionsApproachRatings) {
  // A tiny dense rating matrix that rank-4 factors can fit well.
  Graph ratings;
  ratings.num_vertices = 6;  // 3 users, 3 items (ids 3..5)
  ratings.AddEdge(0, 3, 5.0);
  ratings.AddEdge(0, 4, 1.0);
  ratings.AddEdge(1, 3, 5.0);
  ratings.AddEdge(1, 5, 1.0);
  ratings.AddEdge(2, 4, 5.0);
  ratings.AddEdge(2, 5, 5.0);
  Catalog cat;
  auto model = RunCollaborativeFiltering(&cat, ratings, 4, /*iters=*/60);
  ASSERT_TRUE(model.ok());
  // Training error per rating should be small-ish after 60 epochs.
  const double mse = model->squared_error / (2.0 * ratings.num_edges());
  EXPECT_LT(mse, 1.0);
  // Relative ordering should be learned.
  EXPECT_GT(model->Predict(0, 3), model->Predict(0, 4));
}

TEST(CollaborativeFilteringTest, FactorsHaveDeclaredArity) {
  Graph ratings = GenerateBipartite(10, 5, 60, 1);
  Catalog cat;
  auto model = RunCollaborativeFiltering(&cat, ratings, 6, 2);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->num_factors, 6);
  EXPECT_EQ(model->factors.size(), 15u * 6u);
}

TEST(RandomWalkTest, MassConcentratesNearSource) {
  // Two cliques joined by one bridge; RWR from clique A should rank clique
  // A members above clique B members.
  Graph g;
  g.num_vertices = 8;
  for (int64_t a = 0; a < 4; ++a) {
    for (int64_t b = 0; b < 4; ++b) {
      if (a != b) g.AddEdge(a, b);
    }
  }
  for (int64_t a = 4; a < 8; ++a) {
    for (int64_t b = 4; b < 8; ++b) {
      if (a != b) g.AddEdge(a, b);
    }
  }
  g.AddEdge(3, 4);
  g.AddEdge(4, 3);
  Catalog cat;
  auto scores = RunRandomWalkWithRestart(&cat, g, /*source=*/0, 20);
  ASSERT_TRUE(scores.ok()) << scores.status().ToString();
  EXPECT_GT((*scores)[0], (*scores)[5]);
  EXPECT_GT((*scores)[1], (*scores)[6]);
}

TEST(RandomWalkTest, SourceHasRestartMass) {
  Graph g = GenerateRmat(64, 400, 2);
  Catalog cat;
  auto scores = RunRandomWalkWithRestart(&cat, g, 0, 15, 0.2);
  ASSERT_TRUE(scores.ok());
  EXPECT_GE((*scores)[0], 0.2 * 0.9);  // at least ~the restart mass
  for (double s : *scores) EXPECT_GE(s, 0.0);
}

TEST(DijkstraReferenceTest, HandlesWeightsAndUnreachable) {
  Graph g;
  g.num_vertices = 4;
  g.AddEdge(0, 1, 5.0);
  g.AddEdge(0, 2, 1.0);
  g.AddEdge(2, 1, 1.0);
  auto dist = DijkstraReference(g, 0);
  EXPECT_DOUBLE_EQ(dist[1], 2.0);  // through 2, not direct
  EXPECT_TRUE(std::isinf(dist[3]));
}

TEST(VertexCentricTrianglesTest, CountsKnownGraph) {
  Graph g;
  g.num_vertices = 5;
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  Catalog cat;
  auto count = RunVertexCentricTriangleCount(&cat, g);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, 2);
}

TEST(VertexCentricTrianglesTest, MatchesReferenceOnRandomGraphs) {
  for (uint64_t seed : {101u, 102u, 103u}) {
    Graph g = GenerateRmat(80, 500, seed);
    Catalog cat;
    auto count = RunVertexCentricTriangleCount(&cat, g);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, TriangleCountReference(g)) << "seed " << seed;
  }
}

TEST(VertexCentricTrianglesTest, IgnoresDuplicateAndReverseEdges) {
  Graph g;
  g.num_vertices = 3;
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(0, 1);  // duplicate
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  Catalog cat;
  auto count = RunVertexCentricTriangleCount(&cat, g);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1);
}

TEST(VertexCentricTrianglesTest, QuadraticMessageBlowup) {
  // §3.2: the vertex-centric formulation materializes neighbour pairs as
  // messages. A star with hub degree d must send C(d, 2) probes.
  Graph g;
  g.num_vertices = 21;
  for (int64_t v = 1; v <= 20; ++v) g.AddEdge(0, v);
  Catalog cat;
  RunStats stats;
  auto count = RunVertexCentricTriangleCount(&cat, g, {}, &stats);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0);
  EXPECT_EQ(stats.total_messages, 20 * 19 / 2);
}

TEST(PageRankReferenceTest, UniformOnCycle) {
  Graph g;
  g.num_vertices = 4;
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 0);
  auto ranks = PageRankReference(g, 30);
  for (double r : ranks) EXPECT_NEAR(r, 0.25, 1e-9);
}

}  // namespace
}  // namespace vertexica
