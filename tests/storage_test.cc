// Unit tests for the columnar storage layer: Value, Column, Schema, Table,
// sorting and hash partitioning.

#include <gtest/gtest.h>

#include "storage/partition.h"
#include "storage/sort.h"
#include "storage/table.h"

namespace vertexica {
namespace {

TEST(ValueTest, NullAndTypes) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value(int64_t{5}).is_int64());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("s").is_string());
  EXPECT_TRUE(Value(true).is_bool());
}

TEST(ValueTest, AsDoubleWidensInt) {
  EXPECT_DOUBLE_EQ(Value(int64_t{3}).AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Value(3.5).AsDouble(), 3.5);
}

TEST(ValueTest, EqualityIsTyped) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_NE(Value(int64_t{1}), Value(1.0));  // no coercion
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value(int64_t{0}));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value("ab").ToString(), "'ab'");
}

TEST(ColumnTest, AppendAndGet) {
  Column c(DataType::kInt64);
  c.AppendInt64(1);
  c.AppendInt64(2);
  EXPECT_EQ(c.length(), 2);
  EXPECT_EQ(c.GetInt64(0), 1);
  EXPECT_EQ(c.GetInt64(1), 2);
  EXPECT_EQ(c.null_count(), 0);
}

TEST(ColumnTest, LazyValidity) {
  Column c(DataType::kDouble);
  c.AppendDouble(1.0);
  EXPECT_FALSE(c.IsNull(0));
  c.AppendNull();
  EXPECT_FALSE(c.IsNull(0));
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_EQ(c.null_count(), 1);
  c.AppendDouble(3.0);
  EXPECT_FALSE(c.IsNull(2));
}

TEST(ColumnTest, FromVectorsFactories) {
  auto c = Column::FromInts({1, 2, 3});
  EXPECT_EQ(c.length(), 3);
  EXPECT_EQ(c.type(), DataType::kInt64);
  auto d = Column::FromDoubles({1.5});
  EXPECT_EQ(d.GetDouble(0), 1.5);
  auto s = Column::FromStrings({"a", "b"});
  EXPECT_EQ(s.GetString(1), "b");
  auto b = Column::FromBools({1, 0});
  EXPECT_TRUE(b.GetBool(0));
  EXPECT_FALSE(b.GetBool(1));
}

TEST(ColumnTest, AppendValueCoercesIntToDouble) {
  Column c(DataType::kDouble);
  c.AppendValue(Value(int64_t{4}));
  EXPECT_DOUBLE_EQ(c.GetDouble(0), 4.0);
}

TEST(ColumnTest, AppendColumnConcatenatesWithNulls) {
  Column a = Column::FromInts({1, 2});
  Column b(DataType::kInt64);
  b.AppendInt64(3);
  b.AppendNull();
  a.AppendColumn(b);
  EXPECT_EQ(a.length(), 4);
  EXPECT_EQ(a.GetInt64(2), 3);
  EXPECT_TRUE(a.IsNull(3));
  EXPECT_FALSE(a.IsNull(0));
  EXPECT_EQ(a.null_count(), 1);
}

TEST(ColumnTest, TakeGathers) {
  Column c = Column::FromInts({10, 20, 30, 40});
  Column t = c.Take({3, 0, 0});
  ASSERT_EQ(t.length(), 3);
  EXPECT_EQ(t.GetInt64(0), 40);
  EXPECT_EQ(t.GetInt64(1), 10);
  EXPECT_EQ(t.GetInt64(2), 10);
}

TEST(ColumnTest, TakeKeepsNulls) {
  Column c(DataType::kInt64);
  c.AppendInt64(1);
  c.AppendNull();
  Column t = c.Take({1, 0});
  EXPECT_TRUE(t.IsNull(0));
  EXPECT_EQ(t.GetInt64(1), 1);
}

TEST(ColumnTest, SliceRange) {
  Column c = Column::FromInts({0, 1, 2, 3, 4});
  Column s = c.Slice(1, 3);
  ASSERT_EQ(s.length(), 3);
  EXPECT_EQ(s.GetInt64(0), 1);
  EXPECT_EQ(s.GetInt64(2), 3);
}

TEST(ColumnTest, SliceRecomputesNullCount) {
  Column c(DataType::kInt64);
  c.AppendNull();
  c.AppendInt64(1);
  c.AppendInt64(2);
  Column s = c.Slice(1, 2);
  EXPECT_EQ(s.null_count(), 0);
  EXPECT_FALSE(s.IsNull(0));
}

TEST(ColumnTest, EqualsDeep) {
  Column a = Column::FromInts({1, 2});
  Column b = Column::FromInts({1, 2});
  Column c = Column::FromInts({1, 3});
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));
}

TEST(ColumnTest, CompareRowsOrdersNullsFirst) {
  Column c(DataType::kInt64);
  c.AppendNull();
  c.AppendInt64(5);
  EXPECT_LT(c.CompareRows(0, c, 1), 0);
  EXPECT_GT(c.CompareRows(1, c, 0), 0);
  EXPECT_EQ(c.CompareRows(0, c, 0), 0);
}

TEST(SchemaTest, FieldLookup) {
  Schema s({{"id", DataType::kInt64}, {"value", DataType::kDouble}});
  EXPECT_EQ(s.num_fields(), 2);
  EXPECT_EQ(s.FieldIndex("value"), 1);
  EXPECT_EQ(s.FieldIndex("nope"), -1);
  EXPECT_TRUE(s.HasField("id"));
}

TEST(SchemaTest, EqualTypesIgnoresNames) {
  Schema a({{"x", DataType::kInt64}, {"y", DataType::kDouble}});
  Schema b({{"u", DataType::kInt64}, {"v", DataType::kDouble}});
  Schema c({{"u", DataType::kInt64}, {"v", DataType::kString}});
  EXPECT_FALSE(a.Equals(b));
  EXPECT_TRUE(a.EqualTypes(b));
  EXPECT_FALSE(a.EqualTypes(c));
}

TEST(SchemaTest, WithNames) {
  Schema a({{"x", DataType::kInt64}});
  Schema b = a.WithNames({"id"});
  EXPECT_EQ(b.field(0).name, "id");
  EXPECT_EQ(b.field(0).type, DataType::kInt64);
}

Table MakeTestTable() {
  Table t(Schema({{"id", DataType::kInt64},
                  {"score", DataType::kDouble},
                  {"name", DataType::kString}}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{3}), Value(1.5), Value("c")}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value(2.5), Value("a")}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{2}), Value(0.5), Value("b")}));
  return t;
}

TEST(TableTest, AppendRowAndAccess) {
  Table t = MakeTestTable();
  EXPECT_EQ(t.num_rows(), 3);
  EXPECT_EQ(t.num_columns(), 3);
  EXPECT_TRUE(t.IsConsistent());
  EXPECT_EQ(t.column(0).GetInt64(1), 1);
  EXPECT_EQ(t.ColumnByName("name")->GetString(2), "b");
}

TEST(TableTest, AppendRowArityMismatchFails) {
  Table t(Schema({{"id", DataType::kInt64}}));
  EXPECT_TRUE(t.AppendRow({Value(int64_t{1}), Value(int64_t{2})})
                  .IsInvalidArgument());
}

TEST(TableTest, MakeValidatesTypes) {
  Schema s({{"id", DataType::kInt64}});
  auto bad = Table::Make(s, {Column::FromDoubles({1.0})});
  EXPECT_TRUE(bad.status().IsTypeError());
  auto good = Table::Make(s, {Column::FromInts({1})});
  EXPECT_TRUE(good.ok());
}

TEST(TableTest, MakeValidatesLengths) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kInt64}});
  auto bad = Table::Make(s, {Column::FromInts({1}), Column::FromInts({1, 2})});
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST(TableTest, AppendChecksTypes) {
  Table a(Schema({{"x", DataType::kInt64}}));
  Table b(Schema({{"x", DataType::kDouble}}));
  EXPECT_TRUE(a.Append(b).IsTypeError());
}

TEST(TableTest, AppendAllowsRenamedColumns) {
  Table a(Schema({{"x", DataType::kInt64}}));
  Table b(Schema({{"y", DataType::kInt64}}));
  VX_CHECK_OK(b.AppendRow({Value(int64_t{9})}));
  EXPECT_TRUE(a.Append(b).ok());
  EXPECT_EQ(a.num_rows(), 1);
}

TEST(TableTest, TakeAndSlice) {
  Table t = MakeTestTable();
  Table taken = t.Take({2, 0});
  EXPECT_EQ(taken.num_rows(), 2);
  EXPECT_EQ(taken.column(0).GetInt64(0), 2);
  Table sliced = t.Slice(1, 2);
  EXPECT_EQ(sliced.num_rows(), 2);
  EXPECT_EQ(sliced.column(0).GetInt64(0), 1);
}

TEST(TableTest, SelectColumnsProjects) {
  Table t = MakeTestTable();
  Table p = t.SelectColumns({2, 0});
  EXPECT_EQ(p.num_columns(), 2);
  EXPECT_EQ(p.schema().field(0).name, "name");
  EXPECT_EQ(p.schema().field(1).name, "id");
  EXPECT_EQ(p.num_rows(), 3);
}

TEST(TableTest, RenameColumns) {
  Table t = MakeTestTable().RenameColumns({"a", "b", "c"});
  EXPECT_EQ(t.schema().field(0).name, "a");
  EXPECT_EQ(t.column(0).GetInt64(0), 3);
}

TEST(TableTest, GetRowRoundTrips) {
  Table t = MakeTestTable();
  auto row = t.GetRow(1);
  EXPECT_EQ(row[0], Value(int64_t{1}));
  EXPECT_EQ(row[1], Value(2.5));
  EXPECT_EQ(row[2], Value("a"));
}

TEST(TableTest, EqualsDeep) {
  EXPECT_TRUE(MakeTestTable().Equals(MakeTestTable()));
  Table t = MakeTestTable();
  VX_CHECK_OK(t.AppendRow({Value(int64_t{9}), Value(9.0), Value("z")}));
  EXPECT_FALSE(t.Equals(MakeTestTable()));
}

TEST(SortTest, SingleKeyAscending) {
  Table t = MakeTestTable();
  Table sorted = SortTable(t, {{0, true}});
  EXPECT_EQ(sorted.column(0).GetInt64(0), 1);
  EXPECT_EQ(sorted.column(0).GetInt64(1), 2);
  EXPECT_EQ(sorted.column(0).GetInt64(2), 3);
  // Row integrity: score follows id.
  EXPECT_DOUBLE_EQ(sorted.column(1).GetDouble(0), 2.5);
}

TEST(SortTest, SingleKeyDescending) {
  Table sorted = SortTable(MakeTestTable(), {{1, false}});
  EXPECT_DOUBLE_EQ(sorted.column(1).GetDouble(0), 2.5);
  EXPECT_DOUBLE_EQ(sorted.column(1).GetDouble(2), 0.5);
}

TEST(SortTest, MultiKeyStable) {
  Table t(Schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value(int64_t{10})}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{0}), Value(int64_t{20})}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value(int64_t{5})}));
  Table sorted = SortTable(t, {{0, true}, {1, true}});
  EXPECT_EQ(sorted.column(0).GetInt64(0), 0);
  EXPECT_EQ(sorted.column(1).GetInt64(1), 5);
  EXPECT_EQ(sorted.column(1).GetInt64(2), 10);
}

TEST(SortTest, NullsSortFirst) {
  Table t(Schema({{"k", DataType::kInt64}}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{5})}));
  VX_CHECK_OK(t.AppendRow({Value::Null()}));
  Table sorted = SortTable(t, {{0, true}});
  EXPECT_TRUE(sorted.column(0).IsNull(0));
  EXPECT_EQ(sorted.column(0).GetInt64(1), 5);
}

TEST(SortTest, StringKeys) {
  Table t(Schema({{"s", DataType::kString}}));
  VX_CHECK_OK(t.AppendRow({Value("banana")}));
  VX_CHECK_OK(t.AppendRow({Value("apple")}));
  Table sorted = SortTable(t, {{0, true}});
  EXPECT_EQ(sorted.column(0).GetString(0), "apple");
}

TEST(PartitionTest, CoversAllRowsDisjointly) {
  Table t(Schema({{"id", DataType::kInt64}}));
  for (int64_t i = 0; i < 1000; ++i) {
    VX_CHECK_OK(t.AppendRow({Value(i)}));
  }
  auto parts = HashPartition(t, 0, 7);
  ASSERT_EQ(parts.size(), 7u);
  int64_t total = 0;
  for (const auto& p : parts) total += p.num_rows();
  EXPECT_EQ(total, 1000);
}

TEST(PartitionTest, SameKeySamePartition) {
  Table t(Schema({{"id", DataType::kInt64}}));
  for (int rep = 0; rep < 3; ++rep) {
    for (int64_t i = 0; i < 50; ++i) {
      VX_CHECK_OK(t.AppendRow({Value(i)}));
    }
  }
  auto parts = HashPartition(t, 0, 4);
  for (int64_t key = 0; key < 50; ++key) {
    const int expected = PartitionOf(key, 4);
    for (size_t p = 0; p < parts.size(); ++p) {
      const auto& ids = parts[p].column(0).ints();
      const bool has =
          std::find(ids.begin(), ids.end(), key) != ids.end();
      EXPECT_EQ(has, static_cast<int>(p) == expected);
    }
  }
}

TEST(PartitionTest, ReasonablyBalanced) {
  Table t(Schema({{"id", DataType::kInt64}}));
  for (int64_t i = 0; i < 10000; ++i) {
    VX_CHECK_OK(t.AppendRow({Value(i)}));
  }
  auto parts = HashPartition(t, 0, 8);
  for (const auto& p : parts) {
    EXPECT_GT(p.num_rows(), 900);
    EXPECT_LT(p.num_rows(), 1600);
  }
}

}  // namespace
}  // namespace vertexica
