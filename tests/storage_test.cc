// Unit tests for the columnar storage layer: Value, Column, Schema, Table,
// sorting and hash partitioning — plus the segment-encoding property
// suites: encode→operate→decode is bit-identical to plain execution, and
// zone-map scan pruning never changes filter results at any thread count.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/random.h"
#include "exec/filter.h"
#include "exec/parallel.h"
#include "exec/plan_builder.h"
#include "exec/scan.h"
#include "storage/bitvector.h"
#include "storage/compression.h"
#include "storage/csr_index.h"
#include "storage/partition.h"
#include "storage/sort.h"
#include "storage/table.h"

namespace vertexica {
namespace {

TEST(ValueTest, NullAndTypes) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value(int64_t{5}).is_int64());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("s").is_string());
  EXPECT_TRUE(Value(true).is_bool());
}

TEST(ValueTest, AsDoubleWidensInt) {
  EXPECT_DOUBLE_EQ(Value(int64_t{3}).AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Value(3.5).AsDouble(), 3.5);
}

TEST(ValueTest, EqualityIsTyped) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_NE(Value(int64_t{1}), Value(1.0));  // no coercion
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value(int64_t{0}));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value("ab").ToString(), "'ab'");
}

TEST(ColumnTest, AppendAndGet) {
  Column c(DataType::kInt64);
  c.AppendInt64(1);
  c.AppendInt64(2);
  EXPECT_EQ(c.length(), 2);
  EXPECT_EQ(c.GetInt64(0), 1);
  EXPECT_EQ(c.GetInt64(1), 2);
  EXPECT_EQ(c.null_count(), 0);
}

TEST(ColumnTest, LazyValidity) {
  Column c(DataType::kDouble);
  c.AppendDouble(1.0);
  EXPECT_FALSE(c.IsNull(0));
  c.AppendNull();
  EXPECT_FALSE(c.IsNull(0));
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_EQ(c.null_count(), 1);
  c.AppendDouble(3.0);
  EXPECT_FALSE(c.IsNull(2));
}

TEST(ColumnTest, FromVectorsFactories) {
  auto c = Column::FromInts({1, 2, 3});
  EXPECT_EQ(c.length(), 3);
  EXPECT_EQ(c.type(), DataType::kInt64);
  auto d = Column::FromDoubles({1.5});
  EXPECT_EQ(d.GetDouble(0), 1.5);
  auto s = Column::FromStrings({"a", "b"});
  EXPECT_EQ(s.GetString(1), "b");
  auto b = Column::FromBools({1, 0});
  EXPECT_TRUE(b.GetBool(0));
  EXPECT_FALSE(b.GetBool(1));
}

TEST(ColumnTest, AppendValueCoercesIntToDouble) {
  Column c(DataType::kDouble);
  c.AppendValue(Value(int64_t{4}));
  EXPECT_DOUBLE_EQ(c.GetDouble(0), 4.0);
}

TEST(ColumnTest, AppendColumnConcatenatesWithNulls) {
  Column a = Column::FromInts({1, 2});
  Column b(DataType::kInt64);
  b.AppendInt64(3);
  b.AppendNull();
  a.AppendColumn(b);
  EXPECT_EQ(a.length(), 4);
  EXPECT_EQ(a.GetInt64(2), 3);
  EXPECT_TRUE(a.IsNull(3));
  EXPECT_FALSE(a.IsNull(0));
  EXPECT_EQ(a.null_count(), 1);
}

TEST(ColumnTest, TakeGathers) {
  Column c = Column::FromInts({10, 20, 30, 40});
  Column t = c.Take({3, 0, 0});
  ASSERT_EQ(t.length(), 3);
  EXPECT_EQ(t.GetInt64(0), 40);
  EXPECT_EQ(t.GetInt64(1), 10);
  EXPECT_EQ(t.GetInt64(2), 10);
}

TEST(ColumnTest, TakeKeepsNulls) {
  Column c(DataType::kInt64);
  c.AppendInt64(1);
  c.AppendNull();
  Column t = c.Take({1, 0});
  EXPECT_TRUE(t.IsNull(0));
  EXPECT_EQ(t.GetInt64(1), 1);
}

TEST(ColumnTest, SliceRange) {
  Column c = Column::FromInts({0, 1, 2, 3, 4});
  Column s = c.Slice(1, 3);
  ASSERT_EQ(s.length(), 3);
  EXPECT_EQ(s.GetInt64(0), 1);
  EXPECT_EQ(s.GetInt64(2), 3);
}

TEST(ColumnTest, SliceRecomputesNullCount) {
  Column c(DataType::kInt64);
  c.AppendNull();
  c.AppendInt64(1);
  c.AppendInt64(2);
  Column s = c.Slice(1, 2);
  EXPECT_EQ(s.null_count(), 0);
  EXPECT_FALSE(s.IsNull(0));
}

TEST(ColumnTest, EqualsDeep) {
  Column a = Column::FromInts({1, 2});
  Column b = Column::FromInts({1, 2});
  Column c = Column::FromInts({1, 3});
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));
}

TEST(ColumnTest, CompareRowsOrdersNullsFirst) {
  Column c(DataType::kInt64);
  c.AppendNull();
  c.AppendInt64(5);
  EXPECT_LT(c.CompareRows(0, c, 1), 0);
  EXPECT_GT(c.CompareRows(1, c, 0), 0);
  EXPECT_EQ(c.CompareRows(0, c, 0), 0);
}

TEST(SchemaTest, FieldLookup) {
  Schema s({{"id", DataType::kInt64}, {"value", DataType::kDouble}});
  EXPECT_EQ(s.num_fields(), 2);
  EXPECT_EQ(s.FieldIndex("value"), 1);
  EXPECT_EQ(s.FieldIndex("nope"), -1);
  EXPECT_TRUE(s.HasField("id"));
}

TEST(SchemaTest, EqualTypesIgnoresNames) {
  Schema a({{"x", DataType::kInt64}, {"y", DataType::kDouble}});
  Schema b({{"u", DataType::kInt64}, {"v", DataType::kDouble}});
  Schema c({{"u", DataType::kInt64}, {"v", DataType::kString}});
  EXPECT_FALSE(a.Equals(b));
  EXPECT_TRUE(a.EqualTypes(b));
  EXPECT_FALSE(a.EqualTypes(c));
}

TEST(SchemaTest, WithNames) {
  Schema a({{"x", DataType::kInt64}});
  Schema b = a.WithNames({"id"});
  EXPECT_EQ(b.field(0).name, "id");
  EXPECT_EQ(b.field(0).type, DataType::kInt64);
}

Table MakeTestTable() {
  Table t(Schema({{"id", DataType::kInt64},
                  {"score", DataType::kDouble},
                  {"name", DataType::kString}}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{3}), Value(1.5), Value("c")}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value(2.5), Value("a")}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{2}), Value(0.5), Value("b")}));
  return t;
}

TEST(TableTest, AppendRowAndAccess) {
  Table t = MakeTestTable();
  EXPECT_EQ(t.num_rows(), 3);
  EXPECT_EQ(t.num_columns(), 3);
  EXPECT_TRUE(t.IsConsistent());
  EXPECT_EQ(t.column(0).GetInt64(1), 1);
  EXPECT_EQ(t.ColumnByName("name")->GetString(2), "b");
}

TEST(TableTest, AppendRowArityMismatchFails) {
  Table t(Schema({{"id", DataType::kInt64}}));
  EXPECT_TRUE(t.AppendRow({Value(int64_t{1}), Value(int64_t{2})})
                  .IsInvalidArgument());
}

TEST(TableTest, MakeValidatesTypes) {
  Schema s({{"id", DataType::kInt64}});
  auto bad = Table::Make(s, {Column::FromDoubles({1.0})});
  EXPECT_TRUE(bad.status().IsTypeError());
  auto good = Table::Make(s, {Column::FromInts({1})});
  EXPECT_TRUE(good.ok());
}

TEST(TableTest, MakeValidatesLengths) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kInt64}});
  auto bad = Table::Make(s, {Column::FromInts({1}), Column::FromInts({1, 2})});
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST(TableTest, AppendChecksTypes) {
  Table a(Schema({{"x", DataType::kInt64}}));
  Table b(Schema({{"x", DataType::kDouble}}));
  EXPECT_TRUE(a.Append(b).IsTypeError());
}

TEST(TableTest, AppendAllowsRenamedColumns) {
  Table a(Schema({{"x", DataType::kInt64}}));
  Table b(Schema({{"y", DataType::kInt64}}));
  VX_CHECK_OK(b.AppendRow({Value(int64_t{9})}));
  EXPECT_TRUE(a.Append(b).ok());
  EXPECT_EQ(a.num_rows(), 1);
}

TEST(TableTest, TakeAndSlice) {
  Table t = MakeTestTable();
  Table taken = t.Take({2, 0});
  EXPECT_EQ(taken.num_rows(), 2);
  EXPECT_EQ(taken.column(0).GetInt64(0), 2);
  Table sliced = t.Slice(1, 2);
  EXPECT_EQ(sliced.num_rows(), 2);
  EXPECT_EQ(sliced.column(0).GetInt64(0), 1);
}

TEST(TableTest, SelectColumnsProjects) {
  Table t = MakeTestTable();
  Table p = t.SelectColumns({2, 0});
  EXPECT_EQ(p.num_columns(), 2);
  EXPECT_EQ(p.schema().field(0).name, "name");
  EXPECT_EQ(p.schema().field(1).name, "id");
  EXPECT_EQ(p.num_rows(), 3);
}

TEST(TableTest, RenameColumns) {
  Table t = MakeTestTable().RenameColumns({"a", "b", "c"});
  EXPECT_EQ(t.schema().field(0).name, "a");
  EXPECT_EQ(t.column(0).GetInt64(0), 3);
}

TEST(TableTest, GetRowRoundTrips) {
  Table t = MakeTestTable();
  auto row = t.GetRow(1);
  EXPECT_EQ(row[0], Value(int64_t{1}));
  EXPECT_EQ(row[1], Value(2.5));
  EXPECT_EQ(row[2], Value("a"));
}

TEST(TableTest, EqualsDeep) {
  EXPECT_TRUE(MakeTestTable().Equals(MakeTestTable()));
  Table t = MakeTestTable();
  VX_CHECK_OK(t.AppendRow({Value(int64_t{9}), Value(9.0), Value("z")}));
  EXPECT_FALSE(t.Equals(MakeTestTable()));
}

TEST(SortTest, SingleKeyAscending) {
  Table t = MakeTestTable();
  Table sorted = SortTable(t, {{0, true}});
  EXPECT_EQ(sorted.column(0).GetInt64(0), 1);
  EXPECT_EQ(sorted.column(0).GetInt64(1), 2);
  EXPECT_EQ(sorted.column(0).GetInt64(2), 3);
  // Row integrity: score follows id.
  EXPECT_DOUBLE_EQ(sorted.column(1).GetDouble(0), 2.5);
}

TEST(SortTest, SingleKeyDescending) {
  Table sorted = SortTable(MakeTestTable(), {{1, false}});
  EXPECT_DOUBLE_EQ(sorted.column(1).GetDouble(0), 2.5);
  EXPECT_DOUBLE_EQ(sorted.column(1).GetDouble(2), 0.5);
}

TEST(SortTest, MultiKeyStable) {
  Table t(Schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value(int64_t{10})}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{0}), Value(int64_t{20})}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value(int64_t{5})}));
  Table sorted = SortTable(t, {{0, true}, {1, true}});
  EXPECT_EQ(sorted.column(0).GetInt64(0), 0);
  EXPECT_EQ(sorted.column(1).GetInt64(1), 5);
  EXPECT_EQ(sorted.column(1).GetInt64(2), 10);
}

TEST(SortTest, NullsSortFirst) {
  Table t(Schema({{"k", DataType::kInt64}}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{5})}));
  VX_CHECK_OK(t.AppendRow({Value::Null()}));
  Table sorted = SortTable(t, {{0, true}});
  EXPECT_TRUE(sorted.column(0).IsNull(0));
  EXPECT_EQ(sorted.column(0).GetInt64(1), 5);
}

TEST(SortTest, StringKeys) {
  Table t(Schema({{"s", DataType::kString}}));
  VX_CHECK_OK(t.AppendRow({Value("banana")}));
  VX_CHECK_OK(t.AppendRow({Value("apple")}));
  Table sorted = SortTable(t, {{0, true}});
  EXPECT_EQ(sorted.column(0).GetString(0), "apple");
}

TEST(PartitionTest, CoversAllRowsDisjointly) {
  Table t(Schema({{"id", DataType::kInt64}}));
  for (int64_t i = 0; i < 1000; ++i) {
    VX_CHECK_OK(t.AppendRow({Value(i)}));
  }
  auto parts = HashPartition(t, 0, 7);
  ASSERT_EQ(parts.size(), 7u);
  int64_t total = 0;
  for (const auto& p : parts) total += p.num_rows();
  EXPECT_EQ(total, 1000);
}

TEST(PartitionTest, SameKeySamePartition) {
  Table t(Schema({{"id", DataType::kInt64}}));
  for (int rep = 0; rep < 3; ++rep) {
    for (int64_t i = 0; i < 50; ++i) {
      VX_CHECK_OK(t.AppendRow({Value(i)}));
    }
  }
  auto parts = HashPartition(t, 0, 4);
  for (int64_t key = 0; key < 50; ++key) {
    const int expected = PartitionOf(key, 4);
    for (size_t p = 0; p < parts.size(); ++p) {
      const auto& ids = parts[p].column(0).ints();
      const bool has =
          std::find(ids.begin(), ids.end(), key) != ids.end();
      EXPECT_EQ(has, static_cast<int>(p) == expected);
    }
  }
}

// ------------------------------------------------- NaN total order (sort)

TEST(CompareRowsTest, DoubleNaNTotalOrder) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Column c = Column::FromDoubles({nan, 1.0, nan, -1e300});
  // NaN sorts after every number and compares equal to itself.
  EXPECT_GT(c.CompareRows(0, c, 1), 0);
  EXPECT_LT(c.CompareRows(1, c, 0), 0);
  EXPECT_EQ(c.CompareRows(0, c, 2), 0);
  EXPECT_GT(c.CompareRows(0, c, 3), 0);
}

TEST(SortTest, DoublesWithNaNAreDeterministic) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Table t(Schema({{"x", DataType::kDouble}, {"tag", DataType::kInt64}}));
  VX_CHECK_OK(t.AppendRow({Value(nan), Value(int64_t{0})}));
  VX_CHECK_OK(t.AppendRow({Value(5.0), Value(int64_t{1})}));
  VX_CHECK_OK(t.AppendRow({Value(nan), Value(int64_t{2})}));
  VX_CHECK_OK(t.AppendRow({Value(-1.0), Value(int64_t{3})}));
  Table asc = SortTable(t, {{0, true}});
  EXPECT_DOUBLE_EQ(asc.column(0).GetDouble(0), -1.0);
  EXPECT_DOUBLE_EQ(asc.column(0).GetDouble(1), 5.0);
  EXPECT_TRUE(std::isnan(asc.column(0).GetDouble(2)));
  EXPECT_TRUE(std::isnan(asc.column(0).GetDouble(3)));
  // Stable: the two NaN rows keep their input order.
  EXPECT_EQ(asc.column(1).GetInt64(2), 0);
  EXPECT_EQ(asc.column(1).GetInt64(3), 2);
  Table desc = SortTable(t, {{0, false}});
  EXPECT_TRUE(std::isnan(desc.column(0).GetDouble(0)));
  EXPECT_DOUBLE_EQ(desc.column(0).GetDouble(3), -1.0);
}

// --------------------------------------------------- Sort-order property

Table SortOrderFixture() {
  Table t(Schema({{"a", DataType::kInt64},
                  {"b", DataType::kInt64},
                  {"c", DataType::kDouble}}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{3}), Value(int64_t{1}), Value(0.5)}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value(int64_t{2}), Value(1.5)}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{2}), Value(int64_t{0}), Value(2.5)}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value(int64_t{1}), Value(3.5)}));
  return t;
}

TEST(SortOrderTest, SortTableDeclaresOrderAndColumnFlag) {
  Table sorted = SortOrderFixture();
  EXPECT_TRUE(sorted.sort_order().empty());  // raw appends declare nothing
  sorted = SortTable(sorted, {{0, true}, {1, true}});
  ASSERT_EQ(sorted.sort_order().size(), 2u);
  EXPECT_EQ(sorted.sort_order()[0].column, 0);
  EXPECT_TRUE(sorted.sort_order()[0].ascending);
  EXPECT_TRUE(sorted.column(0).sorted_ascending());
  EXPECT_FALSE(sorted.column(1).sorted_ascending());  // only key 0 is global
  EXPECT_TRUE(sorted.OrderCoversKeys({0}));
  EXPECT_TRUE(sorted.OrderCoversKeys({0, 1}));
  EXPECT_FALSE(sorted.OrderCoversKeys({1}));
}

TEST(SortOrderTest, DroppedOnMutationLikeZoneMap) {
  Table sorted = SortTable(SortOrderFixture(), {{0, true}});
  sorted.mutable_column(0)->BuildZoneMap();
  ASSERT_NE(sorted.column(0).zone_map(), nullptr);
  // mutable_column already drops the table-level declaration...
  EXPECT_TRUE(sorted.sort_order().empty());
  // ...and a row append drops the column-level flag together with the
  // zone map (same PrepareMutation path).
  Table sorted2 = SortTable(SortOrderFixture(), {{0, true}});
  ASSERT_TRUE(sorted2.column(0).sorted_ascending());
  VX_CHECK_OK(sorted2.AppendRow({Value(int64_t{0}), Value(int64_t{0}),
                                 Value(0.0)}));
  EXPECT_TRUE(sorted2.sort_order().empty());
  EXPECT_FALSE(sorted2.column(0).sorted_ascending());
  EXPECT_EQ(sorted2.column(0).zone_map(), nullptr);
}

TEST(SortOrderTest, AppendOfRowsDropsAppendOfNothingKeeps) {
  Table sorted = SortTable(SortOrderFixture(), {{0, true}});
  Table empty(sorted.schema());
  VX_CHECK_OK(sorted.Append(empty));
  EXPECT_FALSE(sorted.sort_order().empty());
  VX_CHECK_OK(sorted.Append(SortOrderFixture()));
  EXPECT_TRUE(sorted.sort_order().empty());
}

TEST(SortOrderTest, SlicePreservesTakeDrops) {
  Table sorted = SortTable(SortOrderFixture(), {{0, true}});
  Table slice = sorted.Slice(1, 2);
  ASSERT_EQ(slice.sort_order().size(), 1u);
  EXPECT_TRUE(slice.column(0).sorted_ascending());
  Table taken = sorted.Take({2, 0, 1});
  EXPECT_TRUE(taken.sort_order().empty());
  EXPECT_FALSE(taken.column(0).sorted_ascending());
}

TEST(SortOrderTest, SelectColumnsRemapsPrefix) {
  Table sorted = SortTable(SortOrderFixture(), {{0, true}, {1, true}});
  // Reorder columns: the order keys follow their columns' new positions.
  Table swapped = sorted.SelectColumns({1, 0});
  ASSERT_EQ(swapped.sort_order().size(), 2u);
  EXPECT_EQ(swapped.sort_order()[0].column, 1);
  EXPECT_EQ(swapped.sort_order()[1].column, 0);
  // Dropping the leading key column ends the claim entirely.
  Table no_lead = sorted.SelectColumns({1, 2});
  EXPECT_TRUE(no_lead.sort_order().empty());
  // Dropping a later key keeps the surviving prefix.
  Table prefix = sorted.SelectColumns({0, 2});
  ASSERT_EQ(prefix.sort_order().size(), 1u);
  EXPECT_EQ(prefix.sort_order()[0].column, 0);
}

TEST(SortOrderTest, EncodeIsValueNeutralForTheDeclaration) {
  // Encoding is a physical-representation switch; the declaration (and
  // the column flag) survive, like the zone map does across Decode.
  Table sorted = SortTable(SortOrderFixture(), {{0, true}});
  sorted.EncodeColumns(EncodingMode::kForce);
  EXPECT_FALSE(sorted.sort_order().empty());
  EXPECT_TRUE(sorted.column(0).sorted_ascending());
  sorted.DecodeColumns();
  EXPECT_FALSE(sorted.sort_order().empty());
  EXPECT_TRUE(sorted.column(0).sorted_ascending());
}

// --------------------------------------------------- Segment encodings

TEST(EncodingTest, RleRoundTripAndAccessors) {
  Column c = Column::FromInts({7, 7, 7, 7, 1, 1, 2, 2, 2, 2});
  Column plain = c;
  ASSERT_TRUE(c.Encode(EncodingMode::kForce));
  EXPECT_EQ(c.encoding(), ColumnEncoding::kRle);
  ASSERT_NE(c.rle_runs(), nullptr);
  EXPECT_EQ(c.rle_runs()->size(), 3u);
  EXPECT_TRUE(c.Equals(plain));
  EXPECT_EQ(c.GetInt64(4), 1);
  EXPECT_EQ(c.ints(), plain.ints());
  c.Decode();
  EXPECT_EQ(c.encoding(), ColumnEncoding::kPlain);
  EXPECT_TRUE(c.Equals(plain));
}

TEST(EncodingTest, DictStringAccessWithoutDecode) {
  Column c = Column::FromStrings({"family", "friend", "family", "family"});
  Column plain = c;
  ASSERT_TRUE(c.Encode(EncodingMode::kForce));
  EXPECT_EQ(c.encoding(), ColumnEncoding::kDict);
  ASSERT_NE(c.dict(), nullptr);
  EXPECT_EQ(c.dict()->dictionary.size(), 2u);
  EXPECT_EQ(c.GetString(2), "family");  // served from the dictionary
  for (int64_t i = 0; i < c.length(); ++i) {
    EXPECT_EQ(c.HashRow(i), plain.HashRow(i)) << i;
    EXPECT_EQ(c.CompareRows(i, plain, i), 0) << i;
  }
  EXPECT_TRUE(c.Equals(plain));
}

TEST(EncodingTest, AutoDeclinesIncompressible) {
  std::vector<int64_t> distinct(1000);
  for (int64_t i = 0; i < 1000; ++i) distinct[static_cast<size_t>(i)] = i;
  Column c = Column::FromInts(std::move(distinct));
  EXPECT_FALSE(c.Encode(EncodingMode::kAuto));  // all-distinct: RLE loses
  EXPECT_EQ(c.encoding(), ColumnEncoding::kPlain);
  EXPECT_NE(c.zone_map(), nullptr);  // the zone map still gets built
}

TEST(EncodingTest, MutationRevertsToPlainAndDropsZoneMap) {
  Column c = Column::FromInts({1, 1, 1, 1});
  ASSERT_TRUE(c.Encode(EncodingMode::kForce));
  ASSERT_NE(c.zone_map(), nullptr);
  c.AppendInt64(9);
  EXPECT_EQ(c.encoding(), ColumnEncoding::kPlain);
  EXPECT_EQ(c.zone_map(), nullptr);  // stale statistics must not survive
  EXPECT_EQ(c.length(), 5);
  EXPECT_EQ(c.GetInt64(4), 9);
}

TEST(EncodingTest, EncodedWithNullsRoundTrips) {
  Column c(DataType::kInt64);
  for (int i = 0; i < 100; ++i) {
    if (i % 7 == 0) {
      c.AppendNull();
    } else {
      c.AppendInt64(i / 10);
    }
  }
  Column plain = c;
  ASSERT_TRUE(c.Encode(EncodingMode::kForce));
  EXPECT_EQ(c.null_count(), plain.null_count());
  EXPECT_TRUE(c.Equals(plain));
  EXPECT_TRUE(c.Take({0, 7, 14, 3}).Equals(plain.Take({0, 7, 14, 3})));
  EXPECT_TRUE(c.Slice(5, 50).Equals(plain.Slice(5, 50)));
}

namespace property {

Table RandomTable(uint64_t seed, int64_t n, bool with_nulls, bool with_nan) {
  Rng rng(seed);
  Table t(Schema({{"k", DataType::kInt64},
                  {"x", DataType::kDouble},
                  {"s", DataType::kString},
                  {"b", DataType::kBool}}));
  for (int64_t i = 0; i < n; ++i) {
    std::vector<Value> row;
    row.push_back(with_nulls && rng.Bernoulli(0.05)
                      ? Value::Null()
                      : Value(rng.UniformRange(0, 40)));
    double d = rng.NextDouble();
    if (with_nan && rng.Bernoulli(0.03)) {
      d = std::numeric_limits<double>::quiet_NaN();
    }
    row.push_back(with_nulls && rng.Bernoulli(0.05) ? Value::Null()
                                                    : Value(d));
    row.push_back(with_nulls && rng.Bernoulli(0.05)
                      ? Value::Null()
                      : Value("tag" + std::to_string(rng.Uniform(6))));
    row.push_back(with_nulls && rng.Bernoulli(0.05)
                      ? Value::Null()
                      : Value(rng.Bernoulli(0.5)));
    VX_CHECK_OK(t.AppendRow(row));
  }
  return t;
}

}  // namespace property

TEST(EncodingPropertyTest, EncodeOperateDecodeIsBitIdentical) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    const Table plain = property::RandomTable(seed, 2000, /*with_nulls=*/true,
                                              /*with_nan=*/true);
    Table encoded = plain;
    encoded.EncodeColumns(EncodingMode::kForce);
    ASSERT_TRUE(encoded.Equals(plain)) << "seed " << seed;

    // Row access, hashing and comparison agree per element.
    for (int c = 0; c < plain.num_columns(); ++c) {
      for (int64_t i = 0; i < plain.num_rows(); i += 97) {
        ASSERT_EQ(encoded.column(c).HashRow(i), plain.column(c).HashRow(i))
            << "seed " << seed << " col " << c << " row " << i;
        ASSERT_EQ(encoded.column(c).CompareRows(i, plain.column(c), i), 0)
            << "seed " << seed << " col " << c << " row " << i;
      }
    }

    // Relational kernels over the encoded table equal the plain ones.
    std::vector<int64_t> gather;
    Rng rng(seed + 100);
    for (int i = 0; i < 500; ++i) {
      gather.push_back(
          static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(
              plain.num_rows()))));
    }
    EXPECT_TRUE(encoded.Take(gather).Equals(plain.Take(gather)));
    EXPECT_TRUE(encoded.Slice(123, 777).Equals(plain.Slice(123, 777)));
    for (int key = 0; key < plain.num_columns(); ++key) {
      EXPECT_TRUE(SortTable(encoded, {{key, true}})
                      .Equals(SortTable(plain, {{key, true}})))
          << "seed " << seed << " sort key " << key;
    }

    Table decoded = encoded;
    decoded.DecodeColumns();
    EXPECT_TRUE(decoded.Equals(plain)) << "seed " << seed;
  }
}

TEST(EncodingPropertyTest, ZoneMapPruningNeverChangesResults) {
  // Large enough to span many zones (4096 rows) and morsels (16384 rows);
  // `k` is block-sorted so zone maps actually prune.
  constexpr int64_t kRows = 100000;
  Rng rng(11);
  Table plain(Schema({{"k", DataType::kInt64},
                      {"x", DataType::kDouble},
                      {"s", DataType::kString}}));
  for (int64_t i = 0; i < kRows; ++i) {
    std::vector<Value> row;
    row.push_back(rng.Bernoulli(0.02) ? Value::Null() : Value(i / 500));
    row.push_back(rng.Bernoulli(0.01)
                      ? Value(std::numeric_limits<double>::quiet_NaN())
                      : Value(rng.NextDouble() * 100.0));
    row.push_back(Value("t" + std::to_string(i / 25000)));
    VX_CHECK_OK(plain.AppendRow(row));
  }
  auto encoded = std::make_shared<Table>(plain);
  encoded->EncodeColumns(EncodingMode::kForce);
  auto encoded_view = std::static_pointer_cast<const Table>(encoded);

  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<ExprPtr> predicates = {
      Eq(Col("k"), Lit(int64_t{37})),
      Ge(Col("k"), Lit(int64_t{190})),
      Lt(Col("k"), Lit(int64_t{3})),
      Ne(Col("k"), Lit(int64_t{0})),
      And(Ge(Col("k"), Lit(int64_t{50})), Lt(Col("k"), Lit(int64_t{52}))),
      Eq(Col("s"), Lit(std::string("t3"))),
      Ge(Col("x"), Lit(99.5)),
      Eq(Col("x"), Lit(nan)),  // NaN literal under the total order
      And(Eq(Col("k"), Lit(int64_t{100})), Ge(Col("x"), Lit(50.0))),
  };
  for (size_t p = 0; p < predicates.size(); ++p) {
    // Baseline: serial FilterOp over the plain table (no zone maps built).
    auto expect = PlanBuilder::Scan(plain).Filter(predicates[p]).Execute();
    ASSERT_TRUE(expect.ok()) << expect.status().ToString();
    for (int threads : {1, 8}) {
      ScopedExecThreads scoped(threads);
      auto actual = ParallelFilter(encoded_view, predicates[p]);
      ASSERT_TRUE(actual.ok())
          << "pred " << p << ": " << actual.status().ToString();
      EXPECT_TRUE(actual->Equals(*expect))
          << "predicate " << p << " diverges at threads=" << threads
          << " (expected " << expect->num_rows() << " rows, got "
          << actual->num_rows() << ")";
    }
  }

  // The selective predicates really do skip ranges.
  ResetScanPruneStats();
  {
    ScopedExecThreads scoped(8);
    auto out = ParallelFilter(encoded_view, Eq(Col("k"), Lit(int64_t{37})));
    ASSERT_TRUE(out.ok());
    EXPECT_GT(out->num_rows(), 0);
  }
  const ScanPruneStats stats = ScanPruneStatsSnapshot();
  EXPECT_GT(stats.ranges_pruned, 0);
  EXPECT_GT(stats.rows_pruned, 0);
}

TEST(EncodingTest, PushedDownScanSkipsBatchesWithoutChangingResults) {
  Table t(Schema({{"k", DataType::kInt64}}));
  for (int64_t i = 0; i < 40000; ++i) {
    VX_CHECK_OK(t.AppendRow({Value(i / 1000)}));
  }
  Table plain = t;
  t.BuildZoneMaps();  // pruning without any encoding
  const ExprPtr pred = Eq(Col("k"), Lit(int64_t{39}));
  auto expect = PlanBuilder::Scan(plain).Filter(pred).Execute();
  ASSERT_TRUE(expect.ok());
  ResetScanPruneStats();
  auto actual = PlanBuilder::Scan(t).Filter(pred).Execute();
  ASSERT_TRUE(actual.ok());
  EXPECT_TRUE(actual->Equals(*expect));
  EXPECT_EQ(actual->num_rows(), 1000);
  EXPECT_GT(ScanPruneStatsSnapshot().ranges_pruned, 0);
}

// --------------------------------------------------- Footprint accounting

TEST(AccountingTest, ValidityBitmapIsCounted) {
  Column no_nulls = Column::FromInts({1, 2, 3, 4});
  Column with_null(DataType::kInt64);
  with_null.AppendInt64(1);
  with_null.AppendInt64(2);
  with_null.AppendInt64(3);
  with_null.AppendNull();
  EXPECT_EQ(UncompressedByteSize(no_nulls), 4 * 8);
  // Same value payload + a materialized 4-byte validity bitmap.
  EXPECT_EQ(UncompressedByteSize(with_null), 4 * 8 + 4);
  // Both encode to 4 runs ({1,2,3,4} vs {1,2,3,0-placeholder}); the null
  // column additionally carries its 4-byte validity bitmap.
  EXPECT_EQ(CompressedByteSize(with_null), CompressedByteSize(no_nulls) + 4);
}

TEST(AccountingTest, DictByteSizeIncludesEntryHeaders) {
  DictEncoded enc;
  enc.dictionary = {"ab", "c"};
  enc.codes = {0, 1, 0};
  EXPECT_EQ(enc.ByteSize(),
            static_cast<int64_t>(3 * sizeof(int32_t) +
                                 2 * sizeof(std::string) + 3));
}

TEST(AccountingTest, EncodedByteSizeTracksRepresentation) {
  Column c = Column::FromInts(std::vector<int64_t>(10000, 7));
  const int64_t plain_bytes = EncodedByteSize(c);
  EXPECT_EQ(plain_bytes, UncompressedByteSize(c));
  ASSERT_TRUE(c.Encode(EncodingMode::kAuto));
  EXPECT_EQ(EncodedByteSize(c), static_cast<int64_t>(sizeof(RleRun)));
  EXPECT_LT(EncodedByteSize(c), plain_bytes / 100);
  c.Decode();
  EXPECT_EQ(EncodedByteSize(c), plain_bytes);
}

TEST(PartitionTest, ReasonablyBalanced) {
  Table t(Schema({{"id", DataType::kInt64}}));
  for (int64_t i = 0; i < 10000; ++i) {
    VX_CHECK_OK(t.AppendRow({Value(i)}));
  }
  auto parts = HashPartition(t, 0, 8);
  for (const auto& p : parts) {
    EXPECT_GT(p.num_rows(), 900);
    EXPECT_LT(p.num_rows(), 1600);
  }
}

// ------------------------------------- scatter contract (partition.h)

/// Key + payload table where payload = original row number, so tests can
/// check order preservation and row identity after a scatter. Every third
/// key is NULL when `with_nulls`.
Table KeyedTable(int64_t rows, bool with_nulls) {
  Table t(Schema({{"key", DataType::kInt64}, {"pos", DataType::kInt64}}));
  for (int64_t i = 0; i < rows; ++i) {
    if (with_nulls && i % 3 == 0) {
      VX_CHECK_OK(t.AppendRow({Value::Null(), Value(i)}));
    } else {
      VX_CHECK_OK(t.AppendRow({Value(i % 17), Value(i)}));
    }
  }
  return t;
}

TEST(PartitionTest, NullKeysGoToPartitionZero) {
  // The documented contract: a NULL key row lands in partition 0,
  // deterministically — the validity bitmap is consulted, never the
  // placeholder bytes in the value slot.
  const Table t = KeyedTable(200, /*with_nulls=*/true);
  auto parts = HashPartition(t, 0, 5);
  int64_t nulls_seen = 0;
  for (size_t p = 0; p < parts.size(); ++p) {
    const Column& keys = parts[p].column(0);
    for (int64_t r = 0; r < keys.length(); ++r) {
      if (keys.IsNull(r)) {
        EXPECT_EQ(p, 0u) << "NULL key in partition " << p;
        ++nulls_seen;
      }
    }
  }
  EXPECT_EQ(nulls_seen, t.column(0).null_count());
  // Deterministic: a second scatter produces identical partitions.
  auto again = HashPartition(t, 0, 5);
  for (size_t p = 0; p < parts.size(); ++p) {
    EXPECT_TRUE(parts[p].Equals(again[p]));
  }
}

TEST(PartitionTest, EncodedKeyMatchesPlainAndStaysEncoded) {
  // An RLE key column scatters run-at-a-time: same partitions as the plain
  // scatter, the source column stays encoded, and the per-partition key
  // columns come out RLE without a decode/re-encode round trip.
  Table plain(Schema({{"key", DataType::kInt64}, {"pos", DataType::kInt64}}));
  for (int64_t i = 0; i < 500; ++i) {
    VX_CHECK_OK(plain.AppendRow({Value(i / 25), Value(i)}));  // 25-long runs
  }
  Table encoded = plain;
  ASSERT_TRUE(encoded.mutable_column(0)->Encode(EncodingMode::kForce));
  ASSERT_TRUE(encoded.column(0).is_encoded());

  auto plain_parts = HashPartition(plain, 0, 4);
  auto encoded_parts = HashPartition(encoded, 0, 4);
  ASSERT_EQ(plain_parts.size(), encoded_parts.size());
  for (size_t p = 0; p < plain_parts.size(); ++p) {
    EXPECT_TRUE(plain_parts[p].Equals(encoded_parts[p])) << "partition " << p;
    if (encoded_parts[p].num_rows() > 0) {
      EXPECT_EQ(encoded_parts[p].column(0).encoding(), ColumnEncoding::kRle);
    }
  }
  EXPECT_TRUE(encoded.column(0).is_encoded()) << "scatter decoded the source";
}

TEST(PartitionTest, EncodedKeyWithNullsMatchesPlain) {
  // Null-bearing RLE keys take the validity-aware run path: values still
  // come from the runs, NULL rows still land in partition 0.
  Table plain = KeyedTable(300, /*with_nulls=*/true);
  Table encoded = plain;
  encoded.mutable_column(0)->Encode(EncodingMode::kForce);
  auto plain_parts = HashPartition(plain, 0, 4);
  auto encoded_parts = HashPartition(encoded, 0, 4);
  for (size_t p = 0; p < plain_parts.size(); ++p) {
    EXPECT_TRUE(plain_parts[p].Equals(encoded_parts[p])) << "partition " << p;
  }
}

TEST(PartitionTest, OrderPreservedWithinPartition) {
  const Table t = KeyedTable(400, /*with_nulls=*/false);
  for (const Table& p : HashPartition(t, 0, 3)) {
    const auto& pos = p.column(1).ints();
    for (size_t r = 1; r < pos.size(); ++r) {
      EXPECT_LT(pos[r - 1], pos[r]) << "input order not preserved";
    }
  }
}

TEST(ColumnTest, FromRleRunsBuildsEncodedColumn) {
  Column c = Column::FromRleRuns({{7, 3}, {7, 2}, {-1, 1}});
  EXPECT_EQ(c.length(), 6);
  EXPECT_EQ(c.encoding(), ColumnEncoding::kRle);
  EXPECT_EQ(c.GetInt64(0), 7);
  EXPECT_EQ(c.GetInt64(4), 7);
  EXPECT_EQ(c.GetInt64(5), -1);
  EXPECT_EQ(c.null_count(), 0);
  // The zone map rides along, built from the runs without a decode.
  ASSERT_NE(c.zone_map(), nullptr);
  ASSERT_EQ(c.zone_map()->zones().size(), 1u);
  EXPECT_EQ(c.zone_map()->zones()[0].min_i, -1);
  EXPECT_EQ(c.zone_map()->zones()[0].max_i, 7);
}

// ------------------------------------- persistent shards (PartitionSet)

TEST(ShardingTest, ShardCountDeterminism) {
  // The same rows end up in the shard owning their key at every shard
  // count, and shards at any S are coarsenings of the same base
  // partitioning — the property behind shard-count-independent results.
  const Table t = KeyedTable(600, /*with_nulls=*/false);
  for (int num_shards : {1, 2, 8}) {
    ShardingSpec spec;
    spec.num_shards = num_shards;
    auto set = PartitionSet::Build(t, 0, spec);
    ASSERT_TRUE(set.ok()) << set.status().ToString();
    ASSERT_EQ(set->num_shards(), num_shards);
    EXPECT_EQ(set->total_rows(), t.num_rows());
    std::vector<uint8_t> seen(static_cast<size_t>(t.num_rows()), 0);
    for (int s = 0; s < num_shards; ++s) {
      const Table& shard = *set->shard(s);
      for (int64_t r = 0; r < shard.num_rows(); ++r) {
        EXPECT_EQ(spec.ShardOfKey(shard.column(0).GetInt64(r)), s);
        seen[static_cast<size_t>(shard.column(1).GetInt64(r))] = 1;
      }
      // Order preservation within a shard.
      const Column& pos = shard.column(1);
      for (int64_t r = 1; r < shard.num_rows(); ++r) {
        EXPECT_LT(pos.GetInt64(r - 1), pos.GetInt64(r));
      }
    }
    for (uint8_t row_seen : seen) EXPECT_EQ(row_seen, 1);
  }
}

TEST(ShardingTest, NullKeysOwnShardZero) {
  const Table t = KeyedTable(90, /*with_nulls=*/true);
  ShardingSpec spec;
  spec.num_shards = 4;
  EXPECT_EQ(spec.ShardOfNull(), 0);
  auto set = PartitionSet::Build(t, 0, spec);
  ASSERT_TRUE(set.ok());
  for (int s = 1; s < set->num_shards(); ++s) {
    EXPECT_EQ(set->shard(s)->column(0).null_count(), 0);
  }
  EXPECT_EQ(set->shard(0)->column(0).null_count(),
            t.column(0).null_count());
}

TEST(ShardingTest, MetadataRetainedPerShard) {
  // A declared sort order survives the (stable) scatter onto every shard,
  // and — with the encoding knob on — shards come out encoded with zone
  // maps where eligible.
  Table t(Schema({{"key", DataType::kInt64}, {"pos", DataType::kInt64}}));
  for (int64_t i = 0; i < 512; ++i) {
    VX_CHECK_OK(t.AppendRow({Value(i / 32), Value(i)}));
  }
  t = SortTable(t, {{0, true}, {1, true}});
  ASSERT_TRUE(t.OrderCoversKeys({0, 1}));

  ScopedEncodingMode scoped(EncodingMode::kForce);
  ShardingSpec spec;
  spec.num_shards = 3;
  auto set = PartitionSet::Build(t, 0, spec);
  ASSERT_TRUE(set.ok());
  for (int s = 0; s < set->num_shards(); ++s) {
    const Table& shard = *set->shard(s);
    EXPECT_TRUE(shard.OrderCoversKeys({0, 1})) << "shard " << s;
    if (shard.num_rows() > 0) {
      EXPECT_EQ(shard.column(0).encoding(), ColumnEncoding::kRle);
    }
  }
}

TEST(ShardingTest, MalformedSpecFails) {
  const Table t = KeyedTable(10, /*with_nulls=*/false);
  ShardingSpec spec;
  spec.num_shards = 128;
  spec.base_partitions = 64;  // more shards than base partitions
  EXPECT_FALSE(PartitionSet::Build(t, 0, spec).ok());
  spec.num_shards = 0;
  EXPECT_FALSE(PartitionSet::Build(t, 0, spec).ok());
}

TEST(ShardingTest, ReplaceShardSwapsTable) {
  const Table t = KeyedTable(100, /*with_nulls=*/false);
  ShardingSpec spec;
  spec.num_shards = 2;
  auto set = PartitionSet::Build(t, 0, spec);
  ASSERT_TRUE(set.ok());
  const int64_t other_rows = set->shard(1)->num_rows();
  Table empty(t.schema());
  set->ReplaceShard(0, std::move(empty));
  EXPECT_EQ(set->shard(0)->num_rows(), 0);
  EXPECT_EQ(set->total_rows(), other_rows);
}

// ---- Bitvector (the frontier representation). ----------------------------

TEST(BitvectorTest, SetTestClearRoundTrip) {
  Bitvector bits(200);
  EXPECT_EQ(bits.size(), 200);
  EXPECT_EQ(bits.CountOnes(), 0);
  for (int64_t i = 0; i < 200; i += 7) bits.Set(i);
  for (int64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(bits.Test(i), i % 7 == 0) << i;
  }
  EXPECT_EQ(bits.CountOnes(), (200 + 6) / 7);
  bits.Clear(0);
  bits.Clear(7);
  EXPECT_FALSE(bits.Test(0));
  EXPECT_FALSE(bits.Test(7));
  EXPECT_TRUE(bits.Test(14));
  EXPECT_EQ(bits.CountOnes(), (200 + 6) / 7 - 2);
}

TEST(BitvectorTest, WordBoundarySizes) {
  // 63/64/65: last-word tails of every flavor. The final bit must be
  // settable and CountOnes must not read past size().
  for (int64_t size : {63, 64, 65}) {
    Bitvector bits(size);
    bits.Set(size - 1);
    EXPECT_TRUE(bits.Test(size - 1)) << size;
    EXPECT_EQ(bits.CountOnes(), 1) << size;
    bits.Set(0);
    EXPECT_EQ(bits.CountOnes(), 2) << size;
    EXPECT_EQ(bits.SetIndices(), (std::vector<int64_t>{0, size - 1}))
        << size;
  }
}

TEST(BitvectorTest, ForEachSetBitAscending) {
  Bitvector bits(130);
  const std::vector<int64_t> expected = {1, 63, 64, 65, 128, 129};
  for (int64_t i : expected) bits.Set(i);
  std::vector<int64_t> seen;
  bits.ForEachSetBit([&seen](int64_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(bits.SetIndices(), expected);
}

TEST(BitvectorTest, AndOrCombine) {
  Bitvector a(100);
  Bitvector b(100);
  for (int64_t i = 0; i < 100; i += 2) a.Set(i);   // evens
  for (int64_t i = 0; i < 100; i += 3) b.Set(i);   // multiples of 3
  Bitvector u = a;
  u.Or(b);
  Bitvector x = a;
  x.And(b);
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(u.Test(i), i % 2 == 0 || i % 3 == 0) << i;
    EXPECT_EQ(x.Test(i), i % 6 == 0) << i;
  }
}

// ---- CsrIndex (frontier edge slices). ------------------------------------

Column GroupedKeys(const std::vector<int64_t>& values) {
  Column c(DataType::kInt64);
  for (int64_t v : values) c.AppendInt64(v);
  return c;
}

TEST(CsrIndexTest, SlicesMatchGroupedRuns) {
  // src column of a (src, dst)-sorted edge table: 0,0,0,2,2,5.
  const Column keys = GroupedKeys({0, 0, 0, 2, 2, 5});
  const auto csr = CsrIndex::Build(keys);
  ASSERT_NE(csr, nullptr);
  EXPECT_EQ(csr->num_keys(), 3);
  EXPECT_EQ(csr->num_rows(), 6);
  EXPECT_EQ(csr->NeighborSlice(0).begin, 0);
  EXPECT_EQ(csr->NeighborSlice(0).end, 3);
  EXPECT_EQ(csr->NeighborSlice(2).begin, 3);
  EXPECT_EQ(csr->NeighborSlice(2).end, 5);
  EXPECT_EQ(csr->NeighborSlice(5).begin, 5);
  EXPECT_EQ(csr->NeighborSlice(5).end, 6);
  EXPECT_EQ(csr->NeighborSlice(1).length(), 0);   // absent key: empty slice
  EXPECT_EQ(csr->NeighborSlice(99).length(), 0);
}

TEST(CsrIndexTest, EncodedKeysBuildFromRuns) {
  Column keys = GroupedKeys({0, 0, 0, 2, 2, 5});
  ASSERT_TRUE(keys.Encode(EncodingMode::kForce));
  ASSERT_EQ(keys.encoding(), ColumnEncoding::kRle);
  const auto csr = CsrIndex::Build(keys);
  ASSERT_NE(csr, nullptr);
  EXPECT_EQ(csr->num_keys(), 3);
  EXPECT_EQ(csr->NeighborSlice(2).begin, 3);
  EXPECT_EQ(csr->NeighborSlice(2).end, 5);
}

TEST(CsrIndexTest, AdjacentRunsSharingAValueMerge) {
  // Column::FromRleRuns permits adjacent runs with the same value; the
  // index must see them as one slice.
  Column keys = Column::FromRleRuns({{7, 2}, {7, 3}, {9, 1}});
  const auto csr = CsrIndex::Build(keys);
  ASSERT_NE(csr, nullptr);
  EXPECT_EQ(csr->num_keys(), 2);
  EXPECT_EQ(csr->NeighborSlice(7).begin, 0);
  EXPECT_EQ(csr->NeighborSlice(7).end, 5);
  EXPECT_EQ(csr->NeighborSlice(9).begin, 5);
  EXPECT_EQ(csr->NeighborSlice(9).end, 6);
}

TEST(CsrIndexTest, UngroupedKeysFailTheBuild) {
  EXPECT_EQ(CsrIndex::Build(GroupedKeys({0, 2, 1})), nullptr);
  EXPECT_EQ(CsrIndex::Build(Column::FromRleRuns({{3, 2}, {1, 2}})), nullptr);
  Column with_null(DataType::kInt64);
  with_null.AppendInt64(1);
  with_null.AppendNull();
  EXPECT_EQ(CsrIndex::Build(with_null), nullptr);
  Column doubles(DataType::kDouble);
  doubles.AppendDouble(1.0);
  EXPECT_EQ(CsrIndex::Build(doubles), nullptr);
}

}  // namespace

// ------------------------------------------------------ invariant audits
//
// The test-only corruption backdoors (friended by the storage classes):
// every mutation hook heals derived state before touching data, so lying
// about structure — the exact thing CheckInvariants exists to catch —
// requires reaching around the public API.

struct ColumnTestAccess {
  static std::shared_ptr<const EncodedSegment>& segment(Column* c) {
    return c->segment_;
  }
  static std::vector<int64_t>& ints(Column* c) { return c->ints_; }
  static std::vector<uint8_t>& validity(Column* c) { return c->validity_; }
  static int64_t& null_count(Column* c) { return c->null_count_; }
};

struct BitvectorTestAccess {
  static std::vector<uint64_t>& words(Bitvector* b) { return b->words_; }
};

namespace {

bool Mentions(const Status& st, const char* needle) {
  return st.ToString().find(needle) != std::string::npos;
}

TEST(InvariantAuditTest, HealthyStructuresPass) {
  Column ints = Column::FromInts({1, 1, 2, 2, 3});
  ASSERT_TRUE(ints.Encode(EncodingMode::kForce));
  EXPECT_TRUE(ints.CheckInvariants().ok());

  Column strs = Column::FromStrings({"a", "b", "a", "b", "a"});
  ASSERT_TRUE(strs.Encode(EncodingMode::kForce));
  EXPECT_TRUE(strs.CheckInvariants().ok());

  Column with_zones = Column::FromDoubles({1.0, 2.0, 3.0});
  with_zones.BuildZoneMap();
  EXPECT_TRUE(with_zones.CheckInvariants().ok());

  auto made = Table::Make(Schema({{"k", DataType::kInt64}}),
                          {Column::FromInts({1, 2, 3})});
  ASSERT_TRUE(made.ok());
  Table t = *made;
  t.SetSortOrder({{0, true}});
  EXPECT_TRUE(t.CheckInvariants().ok());
}

TEST(InvariantAuditTest, LyingColumnSortFlagIsReported) {
  Column c = Column::FromInts({3, 1, 2});
  c.set_sorted_ascending(true);  // public API, false claim
  const Status st = c.CheckInvariants();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(Mentions(st, "declared sorted_ascending but row 0 > row 1"))
      << st.ToString();
}

TEST(InvariantAuditTest, LyingTableSortOrderIsReported) {
  // The leading key really is nondecreasing (so the column-level flag
  // audit passes); the declared tiebreaker is the lie.
  auto made = Table::Make(
      Schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}}),
      {Column::FromInts({1, 1, 2}), Column::FromInts({5, 3, 9})});
  ASSERT_TRUE(made.ok());
  Table t = *made;
  t.SetSortOrder({{0, true}, {1, true}});
  const Status st = t.CheckInvariants();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(Mentions(
      st, "sort order broken between rows 0 and 1 on key column 1 (b)"))
      << st.ToString();
}

TEST(InvariantAuditTest, TruncatedRleRunsAreReported) {
  Column c = Column::FromInts({1, 1, 2, 2, 3});
  ASSERT_TRUE(c.Encode(EncodingMode::kForce));
  ASSERT_EQ(c.encoding(), ColumnEncoding::kRle);
  const auto& good = *ColumnTestAccess::segment(&c);
  auto bad = std::make_shared<EncodedSegment>();
  bad->encoding = ColumnEncoding::kRle;
  bad->length = good.length;
  bad->runs.assign(good.runs.begin(), good.runs.end() - 1);  // drop a run
  bad->run_starts.assign(good.run_starts.begin(), good.run_starts.end() - 1);
  ColumnTestAccess::segment(&c) = bad;
  const Status st = c.CheckInvariants();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(Mentions(st, "RLE runs sum to 4 rows but the column has 5"))
      << st.ToString();
}

TEST(InvariantAuditTest, BrokenRunStartsAreReported) {
  Column c = Column::FromInts({7, 7, 8});
  ASSERT_TRUE(c.Encode(EncodingMode::kForce));
  const auto& good = *ColumnTestAccess::segment(&c);
  auto bad = std::make_shared<EncodedSegment>();
  bad->encoding = ColumnEncoding::kRle;
  bad->length = good.length;
  bad->runs = good.runs;
  bad->run_starts = good.run_starts;
  bad->run_starts[1] = 1;  // true prefix sum is 2
  ColumnTestAccess::segment(&c) = bad;
  const Status st = c.CheckInvariants();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(
      Mentions(st, "run_starts[1] is 1 but runs before it sum to 2"))
      << st.ToString();
}

TEST(InvariantAuditTest, OutOfRangeDictCodeIsReported) {
  Column c = Column::FromStrings({"x", "y", "x", "y"});
  ASSERT_TRUE(c.Encode(EncodingMode::kForce));
  ASSERT_EQ(c.encoding(), ColumnEncoding::kDict);
  const auto& good = *ColumnTestAccess::segment(&c);
  auto bad = std::make_shared<EncodedSegment>();
  bad->encoding = ColumnEncoding::kDict;
  bad->length = good.length;
  bad->dict = good.dict;
  bad->dict.codes[2] = 99;
  ColumnTestAccess::segment(&c) = bad;
  const Status st = c.CheckInvariants();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(
      Mentions(st, "dict code 99 at row 2 outside dictionary of 2 entries"))
      << st.ToString();
}

TEST(InvariantAuditTest, StaleZoneMapIsReported) {
  Column c = Column::FromInts({1, 2, 3, 4});
  c.BuildZoneMap();
  ASSERT_NE(c.zone_map(), nullptr);
  // Reach past PrepareMutation (which would have dropped the zone map) and
  // move a value outside the recorded bounds.
  ColumnTestAccess::ints(&c)[0] = 1000000;
  const Status st = c.CheckInvariants();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(Mentions(
      st, "zone 0 bounds do not cover the value at row 0 (stale zone map?)"))
      << st.ToString();
}

TEST(InvariantAuditTest, NullCountMismatchIsReported) {
  Column c = Column::FromInts({1, 2});
  ColumnTestAccess::null_count(&c) = 1;  // bitmap is empty == all valid
  const Status st = c.CheckInvariants();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(Mentions(
      st, "null_count is 1 but the validity bitmap is empty"))
      << st.ToString();

  Column d(DataType::kInt64);
  d.AppendInt64(5);
  d.AppendNull();
  ColumnTestAccess::validity(&d)[1] = 1;  // claims the NULL row is valid
  const Status st2 = d.CheckInvariants();
  ASSERT_FALSE(st2.ok());
  EXPECT_TRUE(Mentions(
      st2, "validity bitmap holds 0 NULLs but null_count says 1"))
      << st2.ToString();
}

TEST(InvariantAuditTest, BitvectorTailBitIsReported) {
  Bitvector bits(10);
  bits.Set(3);
  EXPECT_TRUE(bits.CheckInvariants().ok());
  BitvectorTestAccess::words(&bits).back() |= uint64_t{1} << 12;  // > size
  const Status st = bits.CheckInvariants();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(Mentions(st, "bits set past size 10")) << st.ToString();
}

TEST(InvariantAuditTest, StaleCsrIndexIsReported) {
  const Column keys = Column::FromInts({0, 0, 1});
  auto csr = CsrIndex::Build(keys);
  ASSERT_NE(csr, nullptr);
  EXPECT_TRUE(csr->CheckInvariants(keys).ok());

  // Audited against a longer snapshot: stale by row count.
  const Column longer = Column::FromInts({0, 0, 1, 2});
  const Status st = csr->CheckInvariants(longer);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(Mentions(
      st, "index covers 3 rows but the key column has 4 (stale index?)"))
      << st.ToString();

  // Same length, different grouping: stale by slice shape.
  const Column regrouped = Column::FromInts({0, 1, 1});
  const Status st2 = csr->CheckInvariants(regrouped);
  ASSERT_FALSE(st2.ok());
  EXPECT_TRUE(Mentions(
      st2, "key 0 maps to slice [0, 2) but its rows span [0, 1)"))
      << st2.ToString();
}

TEST(InvariantAuditTest, MalformedShardingSpecIsReported) {
  ShardingSpec bad;
  bad.num_shards = 4;
  bad.base_partitions = 2;  // shards must coarsen, not refine
  const Status st = bad.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(Mentions(st, "4 shards over 2 base partitions"))
      << st.ToString();

  ShardingSpec good;
  good.num_shards = 3;
  good.base_partitions = 64;
  EXPECT_TRUE(good.Validate().ok());
}

TEST(InvariantAuditTest, MisplacedShardRowIsReported) {
  Schema schema({{"id", DataType::kInt64}, {"v", DataType::kDouble}});
  Table t(schema);
  for (int64_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(t.AppendRow({Value(i), Value(static_cast<double>(i))}).ok());
  }
  ShardingSpec spec;
  spec.num_shards = 2;
  spec.base_partitions = 64;
  auto built = PartitionSet::Build(t, 0, spec);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  PartitionSet set = *built;
  EXPECT_TRUE(set.CheckInvariants().ok());

  // A key provably owned by shard 0, force-placed into shard 1 — the
  // ReplaceShard obligation ("rows still belong to the shard") broken.
  int64_t shard0_key = -1;
  for (int64_t k = 0; k < 1000; ++k) {
    if (spec.ShardOfKey(k) == 0) {
      shard0_key = k;
      break;
    }
  }
  ASSERT_GE(shard0_key, 0);
  Table wrong(schema);
  ASSERT_TRUE(wrong.AppendRow({Value(shard0_key), Value(0.5)}).ok());
  set.ReplaceShard(1, std::move(wrong));
  const Status st = set.CheckInvariants();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(Mentions(
      st, "row 0 of shard 1 carries a key owned by shard 0"))
      << st.ToString();
}

}  // namespace
}  // namespace vertexica
