// Tests for graph extraction from relational data (§3.4) and graph
// summary statistics.

#include <gtest/gtest.h>

#include "sqlgraph/graph_extraction.h"
#include "sqlgraph/sql_pagerank.h"

namespace vertexica {
namespace {

Table Ratings() {
  // (user, item) interactions; some users share items.
  Table t(Schema({{"user", DataType::kInt64}, {"item", DataType::kInt64}}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value(int64_t{100})}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{2}), Value(int64_t{100})}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value(int64_t{101})}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{2}), Value(int64_t{101})}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{3}), Value(int64_t{101})}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{3}), Value(int64_t{102})}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{3}), Value(int64_t{102})}));  // dup
  return t;
}

TEST(ExtractEdgesTest, BasicExtraction) {
  auto edges = ExtractEdges(Ratings(), "user", "item");
  ASSERT_TRUE(edges.ok()) << edges.status().ToString();
  // 6 distinct (user, item) pairs; the duplicate merges with weight 2.
  EXPECT_EQ(edges->num_rows(), 6);
  for (int64_t r = 0; r < edges->num_rows(); ++r) {
    if (edges->ColumnByName("src")->GetInt64(r) == 3 &&
        edges->ColumnByName("dst")->GetInt64(r) == 102) {
      EXPECT_DOUBLE_EQ(edges->ColumnByName("weight")->GetDouble(r), 2.0);
    }
  }
}

TEST(ExtractEdgesTest, DropsNullEndpoints) {
  Table t(Schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value::Null()}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value(int64_t{2})}));
  auto edges = ExtractEdges(t, "a", "b");
  ASSERT_TRUE(edges.ok());
  EXPECT_EQ(edges->num_rows(), 1);
}

TEST(ExtractEdgesTest, ExplicitWeightColumn) {
  Table t(Schema({{"a", DataType::kInt64},
                  {"b", DataType::kInt64},
                  {"n", DataType::kInt64}}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value(int64_t{2}),
                           Value(int64_t{3})}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value(int64_t{2}),
                           Value(int64_t{4})}));
  auto edges = ExtractEdges(t, "a", "b", "n");
  ASSERT_TRUE(edges.ok());
  ASSERT_EQ(edges->num_rows(), 1);
  EXPECT_DOUBLE_EQ(edges->ColumnByName("weight")->GetDouble(0), 7.0);
}

TEST(ExtractEdgesTest, MissingColumnFails) {
  EXPECT_TRUE(
      ExtractEdges(Ratings(), "nope", "item").status().IsInvalidArgument());
}

TEST(CoOccurrenceTest, UsersSharingItems) {
  auto graph = CoOccurrenceGraph(Ratings(), "user", "item", 1);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  // Pairs: (1,2) share {100,101} => weight 2; (1,3) share {101}; (2,3)
  // share {101}.
  ASSERT_EQ(graph->num_rows(), 3);
  EXPECT_EQ(graph->ColumnByName("src")->GetInt64(0), 1);
  EXPECT_EQ(graph->ColumnByName("dst")->GetInt64(0), 2);
  EXPECT_DOUBLE_EQ(graph->ColumnByName("weight")->GetDouble(0), 2.0);
}

TEST(CoOccurrenceTest, MinSharedThreshold) {
  auto graph = CoOccurrenceGraph(Ratings(), "user", "item", 2);
  ASSERT_TRUE(graph.ok());
  ASSERT_EQ(graph->num_rows(), 1);  // only (1,2)
}

TEST(CoOccurrenceTest, DuplicateInteractionsCountOnce) {
  Table t(Schema({{"e", DataType::kInt64}, {"c", DataType::kInt64}}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value(int64_t{9})}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value(int64_t{9})}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{2}), Value(int64_t{9})}));
  auto graph = CoOccurrenceGraph(t, "e", "c", 1);
  ASSERT_TRUE(graph.ok());
  ASSERT_EQ(graph->num_rows(), 1);
  EXPECT_DOUBLE_EQ(graph->ColumnByName("weight")->GetDouble(0), 1.0);
}

TEST(CoOccurrenceTest, FeedsGraphAlgorithms) {
  // End-to-end §3.4: extract an implicit graph, then rank it.
  auto graph = CoOccurrenceGraph(Ratings(), "user", "item", 1);
  ASSERT_TRUE(graph.ok());
  auto ids = DegreeTable(*graph);
  ASSERT_TRUE(ids.ok());
  auto vertices = ids->SelectColumns({0});
  auto ranks = SqlPageRank(vertices, *graph, 5);
  ASSERT_TRUE(ranks.ok()) << ranks.status().ToString();
  EXPECT_EQ(ranks->num_rows(), 3);
}

TEST(DegreeTableTest, CountsBothDirections) {
  Table edges(Schema({{"src", DataType::kInt64},
                      {"dst", DataType::kInt64}}));
  VX_CHECK_OK(edges.AppendRow({Value(int64_t{0}), Value(int64_t{1})}));
  VX_CHECK_OK(edges.AppendRow({Value(int64_t{0}), Value(int64_t{2})}));
  VX_CHECK_OK(edges.AppendRow({Value(int64_t{1}), Value(int64_t{2})}));
  auto degrees = DegreeTable(edges);
  ASSERT_TRUE(degrees.ok()) << degrees.status().ToString();
  ASSERT_EQ(degrees->num_rows(), 3);
  // Sorted by id: 0, 1, 2.
  EXPECT_EQ(degrees->ColumnByName("out_degree")->GetInt64(0), 2);
  EXPECT_EQ(degrees->ColumnByName("in_degree")->GetInt64(0), 0);
  EXPECT_EQ(degrees->ColumnByName("out_degree")->GetInt64(2), 0);
  EXPECT_EQ(degrees->ColumnByName("in_degree")->GetInt64(2), 2);
  EXPECT_EQ(degrees->ColumnByName("degree")->GetInt64(1), 2);
}

TEST(SummarizeGraphTest, BasicStats) {
  Table edges(Schema({{"src", DataType::kInt64},
                      {"dst", DataType::kInt64}}));
  VX_CHECK_OK(edges.AppendRow({Value(int64_t{0}), Value(int64_t{1})}));
  VX_CHECK_OK(edges.AppendRow({Value(int64_t{0}), Value(int64_t{2})}));
  auto summary = SummarizeGraph(edges);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->num_vertices, 3);
  EXPECT_EQ(summary->num_edges, 2);
  EXPECT_EQ(summary->max_out_degree, 2);
  EXPECT_NEAR(summary->avg_out_degree, 2.0 / 3.0, 1e-9);
}

TEST(SummarizeGraphTest, EmptyEdges) {
  Table edges(Schema({{"src", DataType::kInt64},
                      {"dst", DataType::kInt64}}));
  auto summary = SummarizeGraph(edges);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->num_vertices, 0);
  EXPECT_EQ(summary->num_edges, 0);
}

}  // namespace
}  // namespace vertexica
