// Unit tests for the relational operators and the plan builder.

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "exec/plan_builder.h"

namespace vertexica {
namespace {

Table People() {
  Table t(Schema({{"id", DataType::kInt64},
                  {"age", DataType::kInt64},
                  {"city", DataType::kString}}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value(int64_t{30}), Value("bos")}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{2}), Value(int64_t{25}), Value("nyc")}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{3}), Value(int64_t{35}), Value("bos")}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{4}), Value(int64_t{40}), Value("sfo")}));
  return t;
}

Table Orders() {
  Table t(Schema({{"person", DataType::kInt64}, {"amount", DataType::kDouble}}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value(10.0)}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value(20.0)}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{2}), Value(5.0)}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{9}), Value(99.0)}));
  return t;
}

TEST(ScanTest, EmitsAllRowsInBatches) {
  Table t = People();
  TableScan scan(t, /*batch_size=*/3);
  auto b1 = scan.Next();
  ASSERT_TRUE(b1.ok());
  ASSERT_TRUE(b1->has_value());
  EXPECT_EQ((*b1)->num_rows(), 3);
  auto b2 = scan.Next();
  ASSERT_TRUE(b2->has_value());
  EXPECT_EQ((*b2)->num_rows(), 1);
  auto b3 = scan.Next();
  EXPECT_FALSE(b3->has_value());
}

TEST(ScanTest, EmptyTable) {
  TableScan scan(Table(Schema({{"x", DataType::kInt64}})));
  auto b = scan.Next();
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(b->has_value());
}

TEST(FilterTest, KeepsMatchingRows) {
  auto result = PlanBuilder::Scan(People())
                    .Filter(Ge(Col("age"), Lit(int64_t{30})))
                    .Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 3);
}

TEST(FilterTest, DropsNullPredicateRows) {
  Table t(Schema({{"v", DataType::kInt64}}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1})}));
  VX_CHECK_OK(t.AppendRow({Value::Null()}));
  auto result = PlanBuilder::Scan(t).Filter(Gt(Col("v"), Lit(int64_t{0}))).Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 1);
}

TEST(FilterTest, NonBoolPredicateFails) {
  auto result = PlanBuilder::Scan(People()).Filter(Col("age")).Execute();
  EXPECT_TRUE(result.status().IsTypeError());
}

TEST(ProjectTest, ComputesExpressions) {
  auto result = PlanBuilder::Scan(People())
                    .Project({{"id", Col("id")},
                              {"age2", Mul(Col("age"), Lit(int64_t{2}))}})
                    .Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->schema().field(1).name, "age2");
  EXPECT_EQ(result->column(1).GetInt64(3), 80);
}

TEST(ProjectTest, TypeErrorSurfacesAtExecution) {
  auto result = PlanBuilder::Scan(People())
                    .Project({{"bad", Add(Col("city"), Lit(int64_t{1}))}})
                    .Execute();
  EXPECT_TRUE(result.status().IsTypeError());
}

TEST(HashJoinTest, InnerJoinMatches) {
  auto result = PlanBuilder::Scan(Orders())
                    .Join(PlanBuilder::Scan(People()), {"person"}, {"id"})
                    .Execute();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Orders for persons 1 (x2) and 2; person 9 has no match.
  EXPECT_EQ(result->num_rows(), 3);
  EXPECT_EQ(result->schema().num_fields(), 5);
}

TEST(HashJoinTest, LeftJoinPadsWithNulls) {
  auto result = PlanBuilder::Scan(Orders())
                    .Join(PlanBuilder::Scan(People()), {"person"}, {"id"},
                          JoinType::kLeft)
                    .Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 4);
  // Find the person=9 row: its joined id must be NULL.
  const auto& person = result->ColumnByName("person")->ints();
  int64_t row9 = -1;
  for (size_t i = 0; i < person.size(); ++i) {
    if (person[i] == 9) row9 = static_cast<int64_t>(i);
  }
  ASSERT_GE(row9, 0);
  EXPECT_TRUE(result->ColumnByName("id")->IsNull(row9));
}

TEST(HashJoinTest, SemiJoinKeepsLeftColumnsOnly) {
  auto result = PlanBuilder::Scan(Orders())
                    .Join(PlanBuilder::Scan(People()), {"person"}, {"id"},
                          JoinType::kSemi)
                    .Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 3);
  EXPECT_EQ(result->schema().num_fields(), 2);
}

TEST(HashJoinTest, AntiJoinKeepsNonMatching) {
  auto result = PlanBuilder::Scan(Orders())
                    .Join(PlanBuilder::Scan(People()), {"person"}, {"id"},
                          JoinType::kAnti)
                    .Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 1);
  EXPECT_EQ(result->column(0).GetInt64(0), 9);
}

TEST(HashJoinTest, DuplicateBuildKeysFanOut) {
  // Join people against orders (build side has dup keys for person 1).
  auto result = PlanBuilder::Scan(People())
                    .Join(PlanBuilder::Scan(Orders()), {"id"}, {"person"})
                    .Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 3);  // person1 x2 + person2 x1
}

TEST(HashJoinTest, NullKeysNeverMatch) {
  Table l(Schema({{"k", DataType::kInt64}}));
  VX_CHECK_OK(l.AppendRow({Value::Null()}));
  VX_CHECK_OK(l.AppendRow({Value(int64_t{1})}));
  Table r(Schema({{"k", DataType::kInt64}}));
  VX_CHECK_OK(r.AppendRow({Value::Null()}));
  VX_CHECK_OK(r.AppendRow({Value(int64_t{1})}));
  auto inner = PlanBuilder::Scan(l)
                   .Join(PlanBuilder::Scan(r), {"k"}, {"k"})
                   .Execute();
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(inner->num_rows(), 1);
  auto left = PlanBuilder::Scan(l)
                  .Join(PlanBuilder::Scan(r), {"k"}, {"k"}, JoinType::kLeft)
                  .Execute();
  EXPECT_EQ(left->num_rows(), 2);  // null row padded
}

TEST(HashJoinTest, CollidingNamesGetSuffix) {
  auto result = PlanBuilder::Scan(People())
                    .Join(PlanBuilder::Scan(People()), {"id"}, {"id"})
                    .Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->schema().HasField("id_r"));
  EXPECT_TRUE(result->schema().HasField("age_r"));
}

TEST(HashJoinTest, MultiColumnKeys) {
  Table l(Schema({{"a", DataType::kInt64}, {"b", DataType::kString}}));
  VX_CHECK_OK(l.AppendRow({Value(int64_t{1}), Value("x")}));
  VX_CHECK_OK(l.AppendRow({Value(int64_t{1}), Value("y")}));
  Table r(Schema({{"a", DataType::kInt64}, {"b", DataType::kString},
                  {"v", DataType::kInt64}}));
  VX_CHECK_OK(r.AppendRow({Value(int64_t{1}), Value("y"), Value(int64_t{7})}));
  auto result = PlanBuilder::Scan(l)
                    .Join(PlanBuilder::Scan(r), {"a", "b"}, {"a", "b"})
                    .Execute();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 1);
  EXPECT_EQ(result->ColumnByName("v")->GetInt64(0), 7);
}

TEST(AggregateTest, GroupBySumCount) {
  auto result =
      PlanBuilder::Scan(Orders())
          .Aggregate({"person"}, {{AggOp::kSum, "amount", "total"},
                                  {AggOp::kCountStar, "", "n"}})
          .Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 3);
  // Find person 1.
  for (int64_t i = 0; i < result->num_rows(); ++i) {
    if (result->column(0).GetInt64(i) == 1) {
      EXPECT_DOUBLE_EQ(result->column(1).GetDouble(i), 30.0);
      EXPECT_EQ(result->column(2).GetInt64(i), 2);
    }
  }
}

TEST(AggregateTest, GlobalAggregateOnEmptyInput) {
  Table empty(Schema({{"v", DataType::kInt64}}));
  auto result = PlanBuilder::Scan(empty)
                    .Aggregate({}, {{AggOp::kCountStar, "", "n"},
                                    {AggOp::kSum, "v", "s"},
                                    {AggOp::kMin, "v", "mn"}})
                    .Execute();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 1);
  EXPECT_EQ(result->column(0).GetInt64(0), 0);
  EXPECT_TRUE(result->column(1).IsNull(0));
  EXPECT_TRUE(result->column(2).IsNull(0));
}

TEST(AggregateTest, MinMaxAvg) {
  auto result = PlanBuilder::Scan(People())
                    .Aggregate({}, {{AggOp::kMin, "age", "mn"},
                                    {AggOp::kMax, "age", "mx"},
                                    {AggOp::kAvg, "age", "avg"}})
                    .Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->column(0).GetInt64(0), 25);
  EXPECT_EQ(result->column(1).GetInt64(0), 40);
  EXPECT_DOUBLE_EQ(result->column(2).GetDouble(0), 32.5);
}

TEST(AggregateTest, IntSumStaysInt) {
  auto result = PlanBuilder::Scan(People())
                    .Aggregate({}, {{AggOp::kSum, "age", "s"}})
                    .Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->schema().field(0).type, DataType::kInt64);
  EXPECT_EQ(result->column(0).GetInt64(0), 130);
}

TEST(AggregateTest, CountIgnoresNulls) {
  Table t(Schema({{"v", DataType::kInt64}}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1})}));
  VX_CHECK_OK(t.AppendRow({Value::Null()}));
  auto result = PlanBuilder::Scan(t)
                    .Aggregate({}, {{AggOp::kCount, "v", "c"},
                                    {AggOp::kCountStar, "", "n"}})
                    .Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->column(0).GetInt64(0), 1);
  EXPECT_EQ(result->column(1).GetInt64(0), 2);
}

TEST(AggregateTest, StringGroupKeys) {
  auto result = PlanBuilder::Scan(People())
                    .Aggregate({"city"}, {{AggOp::kCountStar, "", "n"}})
                    .Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 3);
  for (int64_t i = 0; i < result->num_rows(); ++i) {
    if (result->column(0).GetString(i) == "bos") {
      EXPECT_EQ(result->column(1).GetInt64(i), 2);
    }
  }
}

TEST(AggregateTest, MinMaxOnStrings) {
  auto result = PlanBuilder::Scan(People())
                    .Aggregate({}, {{AggOp::kMin, "city", "mn"},
                                    {AggOp::kMax, "city", "mx"}})
                    .Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->column(0).GetString(0), "bos");
  EXPECT_EQ(result->column(1).GetString(0), "sfo");
}

TEST(UnionAllTest, ConcatenatesAndRenames) {
  Table a(Schema({{"x", DataType::kInt64}}));
  VX_CHECK_OK(a.AppendRow({Value(int64_t{1})}));
  Table b(Schema({{"y", DataType::kInt64}}));
  VX_CHECK_OK(b.AppendRow({Value(int64_t{2})}));
  auto result =
      PlanBuilder::Scan(a).Union(PlanBuilder::Scan(b)).Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 2);
  EXPECT_EQ(result->schema().field(0).name, "x");
}

TEST(UnionAllTest, TypeMismatchFails) {
  Table a(Schema({{"x", DataType::kInt64}}));
  Table b(Schema({{"x", DataType::kString}}));
  auto result = PlanBuilder::Scan(a).Union(PlanBuilder::Scan(b)).Execute();
  EXPECT_TRUE(result.status().IsTypeError());
}

TEST(SortOpTest, OrderByDescending) {
  auto result = PlanBuilder::Scan(People())
                    .OrderBy({{"age", false}})
                    .Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ColumnByName("age")->GetInt64(0), 40);
  EXPECT_EQ(result->ColumnByName("age")->GetInt64(3), 25);
}

TEST(LimitTest, TruncatesAcrossBatches) {
  Table t(Schema({{"v", DataType::kInt64}}));
  for (int64_t i = 0; i < 100; ++i) VX_CHECK_OK(t.AppendRow({Value(i)}));
  auto op = PlanBuilder::Scan(t, /*batch_size=*/7).Limit(20).Build();
  auto result = Collect(op.get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 20);
}

TEST(DistinctTest, RemovesDuplicateRows) {
  Table t(Schema({{"a", DataType::kInt64}, {"b", DataType::kString}}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value("x")}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value("x")}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value("y")}));
  auto result = PlanBuilder::Scan(t).Distinct().Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 2);
}

TEST(DistinctTest, TreatsNullsAsEqual) {
  Table t(Schema({{"a", DataType::kInt64}}));
  VX_CHECK_OK(t.AppendRow({Value::Null()}));
  VX_CHECK_OK(t.AppendRow({Value::Null()}));
  auto result = PlanBuilder::Scan(t).Distinct().Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 1);
}

TEST(PlanBuilderTest, SelectReordersColumns) {
  auto result =
      PlanBuilder::Scan(People()).Select({"city", "id"}).Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->schema().field(0).name, "city");
  EXPECT_EQ(result->schema().field(1).name, "id");
}

TEST(PlanBuilderTest, RenamePositional) {
  auto result = PlanBuilder::Scan(Orders()).Rename({"p", "amt"}).Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->schema().HasField("p"));
  EXPECT_TRUE(result->schema().HasField("amt"));
}

TEST(PlanBuilderTest, EndToEndPipeline) {
  // Average order amount per city of people over 24, sorted by city.
  auto result =
      PlanBuilder::Scan(Orders())
          .Join(PlanBuilder::Scan(People()).Filter(
                    Gt(Col("age"), Lit(int64_t{24}))),
                {"person"}, {"id"})
          .Aggregate({"city"}, {{AggOp::kAvg, "amount", "avg_amt"}})
          .OrderBy({{"city", true}})
          .Execute();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 2);
  EXPECT_EQ(result->column(0).GetString(0), "bos");
  EXPECT_DOUBLE_EQ(result->column(1).GetDouble(0), 15.0);
  EXPECT_EQ(result->column(0).GetString(1), "nyc");
  EXPECT_DOUBLE_EQ(result->column(1).GetDouble(1), 5.0);
}

TEST(ExplainTest, RendersPlanTree) {
  auto plan = PlanBuilder::Scan(Orders())
                  .Join(PlanBuilder::Scan(People()).Filter(
                            Gt(Col("age"), Lit(int64_t{24}))),
                        {"person"}, {"id"})
                  .Aggregate({"city"}, {{AggOp::kAvg, "amount", "avg_amt"}})
                  .OrderBy({{"city", true}})
                  .Limit(3);
  const std::string explain = plan.Explain();
  EXPECT_NE(explain.find("Limit(3)"), std::string::npos);
  EXPECT_NE(explain.find("Sort(city asc)"), std::string::npos);
  EXPECT_NE(explain.find("HashAggregate(by: city; AVG(amount))"),
            std::string::npos);
  EXPECT_NE(explain.find("HashJoin[INNER](person = id)"), std::string::npos);
  EXPECT_NE(explain.find("Filter((age > 24))"), std::string::npos);
  EXPECT_NE(explain.find("TableScan(4 rows)"), std::string::npos);
  // Tree shape: Limit at depth 0, scans further indented.
  EXPECT_EQ(explain.rfind("Limit(3)\n", 0), 0u);
}

TEST(ExplainTest, UnionAndTopN) {
  Table a(Schema({{"x", DataType::kInt64}}));
  Table b(Schema({{"x", DataType::kInt64}}));
  auto plan = PlanBuilder::Scan(a)
                  .Union(PlanBuilder::Scan(b))
                  .Distinct()
                  .TopN({{"x", false}}, 7);
  const std::string explain = plan.Explain();
  EXPECT_NE(explain.find("TopN(7)"), std::string::npos);
  EXPECT_NE(explain.find("Distinct"), std::string::npos);
  EXPECT_NE(explain.find("UnionAll"), std::string::npos);
}

TEST(CatalogTest, CreateGetReplaceDrop) {
  Catalog cat;
  EXPECT_TRUE(cat.CreateTable("t", People()).ok());
  EXPECT_TRUE(cat.CreateTable("t", People()).IsAlreadyExists());
  EXPECT_TRUE(cat.HasTable("t"));
  auto t = cat.GetTable("t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->num_rows(), 4);
  EXPECT_EQ(*cat.RowCount("t"), 4);

  Table smaller = People().Slice(0, 1);
  EXPECT_TRUE(cat.ReplaceTable("t", smaller).ok());
  EXPECT_EQ(*cat.RowCount("t"), 1);

  EXPECT_TRUE(cat.DropTable("t").ok());
  EXPECT_FALSE(cat.HasTable("t"));
  EXPECT_TRUE(cat.DropTable("t").IsNotFound());
  EXPECT_TRUE(cat.GetTable("t").status().IsNotFound());
}

TEST(CatalogTest, SnapshotsAreImmutable) {
  Catalog cat;
  VX_CHECK_OK(cat.CreateTable("t", People()));
  auto snap = *cat.GetTable("t");
  VX_CHECK_OK(cat.ReplaceTable("t", Table(Schema({{"x", DataType::kInt64}}))));
  // The old snapshot still sees 4 rows.
  EXPECT_EQ(snap->num_rows(), 4);
  EXPECT_EQ(*cat.RowCount("t"), 0);
}

}  // namespace
}  // namespace vertexica
