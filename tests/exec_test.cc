// Unit tests for the relational operators and the plan builder.

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <stdexcept>

#include "catalog/catalog.h"
#include "common/cancel.h"
#include "common/random.h"
#include "common/threadpool.h"
#include "exec/exec_knobs.h"
#include "exec/kernel_stats.h"
#include "exec/merge_join.h"
#include "exec/parallel.h"
#include "exec/plan_builder.h"
#include "exec/vectorized.h"
#include "storage/sort.h"

namespace vertexica {
namespace {

Table People() {
  Table t(Schema({{"id", DataType::kInt64},
                  {"age", DataType::kInt64},
                  {"city", DataType::kString}}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value(int64_t{30}), Value("bos")}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{2}), Value(int64_t{25}), Value("nyc")}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{3}), Value(int64_t{35}), Value("bos")}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{4}), Value(int64_t{40}), Value("sfo")}));
  return t;
}

Table Orders() {
  Table t(Schema({{"person", DataType::kInt64}, {"amount", DataType::kDouble}}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value(10.0)}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value(20.0)}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{2}), Value(5.0)}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{9}), Value(99.0)}));
  return t;
}

TEST(ScanTest, EmitsAllRowsInBatches) {
  Table t = People();
  TableScan scan(t, /*batch_size=*/3);
  auto b1 = scan.Next();
  ASSERT_TRUE(b1.ok());
  ASSERT_TRUE(b1->has_value());
  EXPECT_EQ((*b1)->num_rows(), 3);
  auto b2 = scan.Next();
  ASSERT_TRUE(b2->has_value());
  EXPECT_EQ((*b2)->num_rows(), 1);
  auto b3 = scan.Next();
  EXPECT_FALSE(b3->has_value());
}

TEST(ScanTest, EmptyTable) {
  TableScan scan(Table(Schema({{"x", DataType::kInt64}})));
  auto b = scan.Next();
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(b->has_value());
}

TEST(FilterTest, KeepsMatchingRows) {
  auto result = PlanBuilder::Scan(People())
                    .Filter(Ge(Col("age"), Lit(int64_t{30})))
                    .Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 3);
}

TEST(FilterTest, DropsNullPredicateRows) {
  Table t(Schema({{"v", DataType::kInt64}}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1})}));
  VX_CHECK_OK(t.AppendRow({Value::Null()}));
  auto result = PlanBuilder::Scan(t).Filter(Gt(Col("v"), Lit(int64_t{0}))).Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 1);
}

TEST(FilterTest, NonBoolPredicateFails) {
  auto result = PlanBuilder::Scan(People()).Filter(Col("age")).Execute();
  EXPECT_TRUE(result.status().IsTypeError());
}

TEST(ProjectTest, ComputesExpressions) {
  auto result = PlanBuilder::Scan(People())
                    .Project({{"id", Col("id")},
                              {"age2", Mul(Col("age"), Lit(int64_t{2}))}})
                    .Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->schema().field(1).name, "age2");
  EXPECT_EQ(result->column(1).GetInt64(3), 80);
}

TEST(ProjectTest, TypeErrorSurfacesAtExecution) {
  auto result = PlanBuilder::Scan(People())
                    .Project({{"bad", Add(Col("city"), Lit(int64_t{1}))}})
                    .Execute();
  EXPECT_TRUE(result.status().IsTypeError());
}

TEST(HashJoinTest, InnerJoinMatches) {
  auto result = PlanBuilder::Scan(Orders())
                    .Join(PlanBuilder::Scan(People()), {"person"}, {"id"})
                    .Execute();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Orders for persons 1 (x2) and 2; person 9 has no match.
  EXPECT_EQ(result->num_rows(), 3);
  EXPECT_EQ(result->schema().num_fields(), 5);
}

TEST(HashJoinTest, LeftJoinPadsWithNulls) {
  auto result = PlanBuilder::Scan(Orders())
                    .Join(PlanBuilder::Scan(People()), {"person"}, {"id"},
                          JoinType::kLeft)
                    .Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 4);
  // Find the person=9 row: its joined id must be NULL.
  const auto& person = result->ColumnByName("person")->ints();
  int64_t row9 = -1;
  for (size_t i = 0; i < person.size(); ++i) {
    if (person[i] == 9) row9 = static_cast<int64_t>(i);
  }
  ASSERT_GE(row9, 0);
  EXPECT_TRUE(result->ColumnByName("id")->IsNull(row9));
}

TEST(HashJoinTest, SemiJoinKeepsLeftColumnsOnly) {
  auto result = PlanBuilder::Scan(Orders())
                    .Join(PlanBuilder::Scan(People()), {"person"}, {"id"},
                          JoinType::kSemi)
                    .Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 3);
  EXPECT_EQ(result->schema().num_fields(), 2);
}

TEST(HashJoinTest, AntiJoinKeepsNonMatching) {
  auto result = PlanBuilder::Scan(Orders())
                    .Join(PlanBuilder::Scan(People()), {"person"}, {"id"},
                          JoinType::kAnti)
                    .Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 1);
  EXPECT_EQ(result->column(0).GetInt64(0), 9);
}

TEST(HashJoinTest, DuplicateBuildKeysFanOut) {
  // Join people against orders (build side has dup keys for person 1).
  auto result = PlanBuilder::Scan(People())
                    .Join(PlanBuilder::Scan(Orders()), {"id"}, {"person"})
                    .Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 3);  // person1 x2 + person2 x1
}

TEST(HashJoinTest, NullKeysNeverMatch) {
  Table l(Schema({{"k", DataType::kInt64}}));
  VX_CHECK_OK(l.AppendRow({Value::Null()}));
  VX_CHECK_OK(l.AppendRow({Value(int64_t{1})}));
  Table r(Schema({{"k", DataType::kInt64}}));
  VX_CHECK_OK(r.AppendRow({Value::Null()}));
  VX_CHECK_OK(r.AppendRow({Value(int64_t{1})}));
  auto inner = PlanBuilder::Scan(l)
                   .Join(PlanBuilder::Scan(r), {"k"}, {"k"})
                   .Execute();
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(inner->num_rows(), 1);
  auto left = PlanBuilder::Scan(l)
                  .Join(PlanBuilder::Scan(r), {"k"}, {"k"}, JoinType::kLeft)
                  .Execute();
  EXPECT_EQ(left->num_rows(), 2);  // null row padded
}

TEST(HashJoinTest, CollidingNamesGetSuffix) {
  auto result = PlanBuilder::Scan(People())
                    .Join(PlanBuilder::Scan(People()), {"id"}, {"id"})
                    .Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->schema().HasField("id_r"));
  EXPECT_TRUE(result->schema().HasField("age_r"));
}

TEST(HashJoinTest, MultiColumnKeys) {
  Table l(Schema({{"a", DataType::kInt64}, {"b", DataType::kString}}));
  VX_CHECK_OK(l.AppendRow({Value(int64_t{1}), Value("x")}));
  VX_CHECK_OK(l.AppendRow({Value(int64_t{1}), Value("y")}));
  Table r(Schema({{"a", DataType::kInt64}, {"b", DataType::kString},
                  {"v", DataType::kInt64}}));
  VX_CHECK_OK(r.AppendRow({Value(int64_t{1}), Value("y"), Value(int64_t{7})}));
  auto result = PlanBuilder::Scan(l)
                    .Join(PlanBuilder::Scan(r), {"a", "b"}, {"a", "b"})
                    .Execute();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 1);
  EXPECT_EQ(result->ColumnByName("v")->GetInt64(0), 7);
}

TEST(AggregateTest, GroupBySumCount) {
  auto result =
      PlanBuilder::Scan(Orders())
          .Aggregate({"person"}, {{AggOp::kSum, "amount", "total"},
                                  {AggOp::kCountStar, "", "n"}})
          .Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 3);
  // Find person 1.
  for (int64_t i = 0; i < result->num_rows(); ++i) {
    if (result->column(0).GetInt64(i) == 1) {
      EXPECT_DOUBLE_EQ(result->column(1).GetDouble(i), 30.0);
      EXPECT_EQ(result->column(2).GetInt64(i), 2);
    }
  }
}

TEST(AggregateTest, GlobalAggregateOnEmptyInput) {
  Table empty(Schema({{"v", DataType::kInt64}}));
  auto result = PlanBuilder::Scan(empty)
                    .Aggregate({}, {{AggOp::kCountStar, "", "n"},
                                    {AggOp::kSum, "v", "s"},
                                    {AggOp::kMin, "v", "mn"}})
                    .Execute();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 1);
  EXPECT_EQ(result->column(0).GetInt64(0), 0);
  EXPECT_TRUE(result->column(1).IsNull(0));
  EXPECT_TRUE(result->column(2).IsNull(0));
}

TEST(AggregateTest, MinMaxAvg) {
  auto result = PlanBuilder::Scan(People())
                    .Aggregate({}, {{AggOp::kMin, "age", "mn"},
                                    {AggOp::kMax, "age", "mx"},
                                    {AggOp::kAvg, "age", "avg"}})
                    .Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->column(0).GetInt64(0), 25);
  EXPECT_EQ(result->column(1).GetInt64(0), 40);
  EXPECT_DOUBLE_EQ(result->column(2).GetDouble(0), 32.5);
}

TEST(AggregateTest, IntSumStaysInt) {
  auto result = PlanBuilder::Scan(People())
                    .Aggregate({}, {{AggOp::kSum, "age", "s"}})
                    .Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->schema().field(0).type, DataType::kInt64);
  EXPECT_EQ(result->column(0).GetInt64(0), 130);
}

TEST(AggregateTest, CountIgnoresNulls) {
  Table t(Schema({{"v", DataType::kInt64}}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1})}));
  VX_CHECK_OK(t.AppendRow({Value::Null()}));
  auto result = PlanBuilder::Scan(t)
                    .Aggregate({}, {{AggOp::kCount, "v", "c"},
                                    {AggOp::kCountStar, "", "n"}})
                    .Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->column(0).GetInt64(0), 1);
  EXPECT_EQ(result->column(1).GetInt64(0), 2);
}

TEST(AggregateTest, StringGroupKeys) {
  auto result = PlanBuilder::Scan(People())
                    .Aggregate({"city"}, {{AggOp::kCountStar, "", "n"}})
                    .Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 3);
  for (int64_t i = 0; i < result->num_rows(); ++i) {
    if (result->column(0).GetString(i) == "bos") {
      EXPECT_EQ(result->column(1).GetInt64(i), 2);
    }
  }
}

TEST(AggregateTest, MinMaxOnStrings) {
  auto result = PlanBuilder::Scan(People())
                    .Aggregate({}, {{AggOp::kMin, "city", "mn"},
                                    {AggOp::kMax, "city", "mx"}})
                    .Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->column(0).GetString(0), "bos");
  EXPECT_EQ(result->column(1).GetString(0), "sfo");
}

TEST(UnionAllTest, ConcatenatesAndRenames) {
  Table a(Schema({{"x", DataType::kInt64}}));
  VX_CHECK_OK(a.AppendRow({Value(int64_t{1})}));
  Table b(Schema({{"y", DataType::kInt64}}));
  VX_CHECK_OK(b.AppendRow({Value(int64_t{2})}));
  auto result =
      PlanBuilder::Scan(a).Union(PlanBuilder::Scan(b)).Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 2);
  EXPECT_EQ(result->schema().field(0).name, "x");
}

TEST(UnionAllTest, TypeMismatchFails) {
  Table a(Schema({{"x", DataType::kInt64}}));
  Table b(Schema({{"x", DataType::kString}}));
  auto result = PlanBuilder::Scan(a).Union(PlanBuilder::Scan(b)).Execute();
  EXPECT_TRUE(result.status().IsTypeError());
}

TEST(SortOpTest, OrderByDescending) {
  auto result = PlanBuilder::Scan(People())
                    .OrderBy({{"age", false}})
                    .Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ColumnByName("age")->GetInt64(0), 40);
  EXPECT_EQ(result->ColumnByName("age")->GetInt64(3), 25);
}

TEST(LimitTest, TruncatesAcrossBatches) {
  Table t(Schema({{"v", DataType::kInt64}}));
  for (int64_t i = 0; i < 100; ++i) VX_CHECK_OK(t.AppendRow({Value(i)}));
  auto op = PlanBuilder::Scan(t, /*batch_size=*/7).Limit(20).Build();
  auto result = Collect(op.get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 20);
}

TEST(DistinctTest, RemovesDuplicateRows) {
  Table t(Schema({{"a", DataType::kInt64}, {"b", DataType::kString}}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value("x")}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value("x")}));
  VX_CHECK_OK(t.AppendRow({Value(int64_t{1}), Value("y")}));
  auto result = PlanBuilder::Scan(t).Distinct().Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 2);
}

TEST(DistinctTest, TreatsNullsAsEqual) {
  Table t(Schema({{"a", DataType::kInt64}}));
  VX_CHECK_OK(t.AppendRow({Value::Null()}));
  VX_CHECK_OK(t.AppendRow({Value::Null()}));
  auto result = PlanBuilder::Scan(t).Distinct().Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 1);
}

TEST(PlanBuilderTest, SelectReordersColumns) {
  auto result =
      PlanBuilder::Scan(People()).Select({"city", "id"}).Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->schema().field(0).name, "city");
  EXPECT_EQ(result->schema().field(1).name, "id");
}

TEST(PlanBuilderTest, RenamePositional) {
  auto result = PlanBuilder::Scan(Orders()).Rename({"p", "amt"}).Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->schema().HasField("p"));
  EXPECT_TRUE(result->schema().HasField("amt"));
}

TEST(PlanBuilderTest, EndToEndPipeline) {
  // Average order amount per city of people over 24, sorted by city.
  auto result =
      PlanBuilder::Scan(Orders())
          .Join(PlanBuilder::Scan(People()).Filter(
                    Gt(Col("age"), Lit(int64_t{24}))),
                {"person"}, {"id"})
          .Aggregate({"city"}, {{AggOp::kAvg, "amount", "avg_amt"}})
          .OrderBy({{"city", true}})
          .Execute();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 2);
  EXPECT_EQ(result->column(0).GetString(0), "bos");
  EXPECT_DOUBLE_EQ(result->column(1).GetDouble(0), 15.0);
  EXPECT_EQ(result->column(0).GetString(1), "nyc");
  EXPECT_DOUBLE_EQ(result->column(1).GetDouble(1), 5.0);
}

TEST(ExplainTest, RendersPlanTree) {
  auto plan = PlanBuilder::Scan(Orders())
                  .Join(PlanBuilder::Scan(People()).Filter(
                            Gt(Col("age"), Lit(int64_t{24}))),
                        {"person"}, {"id"})
                  .Aggregate({"city"}, {{AggOp::kAvg, "amount", "avg_amt"}})
                  .OrderBy({{"city", true}})
                  .Limit(3);
  const std::string explain = plan.Explain();
  EXPECT_NE(explain.find("Limit(3)"), std::string::npos);
  EXPECT_NE(explain.find("Sort(city asc)"), std::string::npos);
  EXPECT_NE(explain.find("HashAggregate(by: city; AVG(amount))"),
            std::string::npos);
  EXPECT_NE(explain.find("HashJoin[INNER](person = id)"), std::string::npos);
  EXPECT_NE(explain.find("Filter((age > 24))"), std::string::npos);
  EXPECT_NE(explain.find("TableScan(4 rows)"), std::string::npos);
  // Tree shape: Limit at depth 0, scans further indented.
  EXPECT_EQ(explain.rfind("Limit(3)\n", 0), 0u);
}

TEST(ExplainTest, UnionAndTopN) {
  Table a(Schema({{"x", DataType::kInt64}}));
  Table b(Schema({{"x", DataType::kInt64}}));
  auto plan = PlanBuilder::Scan(a)
                  .Union(PlanBuilder::Scan(b))
                  .Distinct()
                  .TopN({{"x", false}}, 7);
  const std::string explain = plan.Explain();
  EXPECT_NE(explain.find("TopN(7)"), std::string::npos);
  EXPECT_NE(explain.find("Distinct"), std::string::npos);
  EXPECT_NE(explain.find("UnionAll"), std::string::npos);
}

TEST(CatalogTest, CreateGetReplaceDrop) {
  Catalog cat;
  EXPECT_TRUE(cat.CreateTable("t", People()).ok());
  EXPECT_TRUE(cat.CreateTable("t", People()).IsAlreadyExists());
  EXPECT_TRUE(cat.HasTable("t"));
  auto t = cat.GetTable("t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->num_rows(), 4);
  EXPECT_EQ(*cat.RowCount("t"), 4);

  Table smaller = People().Slice(0, 1);
  EXPECT_TRUE(cat.ReplaceTable("t", smaller).ok());
  EXPECT_EQ(*cat.RowCount("t"), 1);

  EXPECT_TRUE(cat.DropTable("t").ok());
  EXPECT_FALSE(cat.HasTable("t"));
  EXPECT_TRUE(cat.DropTable("t").IsNotFound());
  EXPECT_TRUE(cat.GetTable("t").status().IsNotFound());
}

TEST(CatalogTest, SnapshotsAreImmutable) {
  Catalog cat;
  VX_CHECK_OK(cat.CreateTable("t", People()));
  auto snap = *cat.GetTable("t");
  VX_CHECK_OK(cat.ReplaceTable("t", Table(Schema({{"x", DataType::kInt64}}))));
  // The old snapshot still sees 4 rows.
  EXPECT_EQ(snap->num_rows(), 4);
  EXPECT_EQ(*cat.RowCount("t"), 0);
}

// ---------------------------------------------------------------------------
// Morsel-parallel executor determinism (exec/parallel.h): the parallel
// kernels must produce row-set-identical results to the serial reference
// operators at 1/2/8 threads and adversarial morsel sizes, and bit-identical
// results across thread counts.
// ---------------------------------------------------------------------------

/// Random keyed table: k INT64 (low cardinality), v INT64, x DOUBLE, with
/// ~10% NULLs in v/x.
Table KeyedTable(uint64_t seed, int64_t rows, int64_t key_range) {
  Rng rng(seed);
  Table t(Schema({{"k", DataType::kInt64},
                  {"v", DataType::kInt64},
                  {"x", DataType::kDouble}}));
  for (int64_t r = 0; r < rows; ++r) {
    auto maybe_null = [&](Value v) {
      return rng.Bernoulli(0.1) ? Value::Null() : v;
    };
    VX_CHECK_OK(t.AppendRow(
        {Value(static_cast<int64_t>(rng.Uniform(
             static_cast<uint64_t>(key_range)))),
         maybe_null(Value(rng.UniformRange(-100, 100))),
         maybe_null(Value(rng.NextDouble()))}));
  }
  return t;
}

/// Canonical row order (sort by every column) for row-set comparison.
Table Sorted(const Table& t) {
  std::vector<SortKey> keys;
  for (int c = 0; c < t.num_columns(); ++c) keys.push_back(SortKey{c, true});
  return SortTable(t, keys);
}

const int kThreadSweep[] = {1, 2, 8};
const int64_t kMorselSweep[] = {1, 7, kDefaultMorselRows};

TEST(ParallelExecTest, FilterProjectMatchesSerialExactly) {
  const Table t = KeyedTable(11, 1000, 50);
  const ExprPtr pred = Gt(Col("v"), Lit(int64_t{0}));
  const std::vector<ProjectionSpec> proj = {
      {"k", Col("k")}, {"v2", Mul(Col("v"), Lit(int64_t{2}))}};
  auto serial = PlanBuilder::Scan(t).Filter(pred).Project(proj).Execute();
  ASSERT_TRUE(serial.ok());
  const auto shared = std::make_shared<const Table>(t);
  for (int threads : kThreadSweep) {
    for (int64_t morsel : kMorselSweep) {
      ParallelOptions opts;
      opts.num_threads = threads;
      opts.morsel_rows = morsel;
      auto parallel = ParallelFilterProject(shared, pred, proj, opts);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      // The morsel driver preserves row order, so equality is exact.
      EXPECT_TRUE(parallel->Equals(*serial))
          << "threads=" << threads << " morsel=" << morsel;
    }
  }
}

TEST(ParallelExecTest, JoinMatchesSerialAllTypesExactly) {
  const Table probe = KeyedTable(21, 700, 40);
  const Table build = KeyedTable(22, 300, 40);
  for (JoinType type : {JoinType::kInner, JoinType::kLeft, JoinType::kSemi,
                        JoinType::kAnti}) {
    HashJoinOp serial_op(std::make_unique<TableScan>(probe),
                         std::make_unique<TableScan>(build), {"k"}, {"k"},
                         type);
    auto serial = Collect(&serial_op);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (int threads : kThreadSweep) {
      for (int64_t morsel : kMorselSweep) {
        ParallelOptions opts;
        opts.num_threads = threads;
        opts.morsel_rows = morsel;
        auto parallel =
            ParallelHashJoin(probe, build, {"k"}, {"k"}, type, opts);
        ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
        // The parallel join reproduces the serial probe-row-major match
        // order exactly, at any thread count and morsel size.
        EXPECT_TRUE(parallel->Equals(*serial))
            << JoinTypeName(type) << " threads=" << threads
            << " morsel=" << morsel;
      }
    }
  }
}

TEST(ParallelExecTest, CollisionHeavyJoinKeys) {
  // Every row hashes to one of two keys: chains are long and fan-out is
  // quadratic per key — a worst case for partitioned builds.
  const Table probe = KeyedTable(31, 400, 2);
  const Table build = KeyedTable(32, 200, 2);
  HashJoinOp serial_op(std::make_unique<TableScan>(probe),
                       std::make_unique<TableScan>(build), {"k"}, {"k"},
                       JoinType::kInner);
  auto serial = Collect(&serial_op);
  ASSERT_TRUE(serial.ok());
  ParallelOptions opts;
  opts.num_threads = 8;
  opts.morsel_rows = 13;
  auto parallel =
      ParallelHashJoin(probe, build, {"k"}, {"k"}, JoinType::kInner, opts);
  ASSERT_TRUE(parallel.ok());
  EXPECT_GT(parallel->num_rows(), 10000);
  EXPECT_TRUE(parallel->Equals(*serial));
}

TEST(ParallelExecTest, MultiKeyNullKeyJoin) {
  // NULL keys never match, including in parallel probes.
  Table l(Schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}}));
  Table r(Schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}}));
  for (int64_t i = 0; i < 50; ++i) {
    VX_CHECK_OK(l.AppendRow({i % 2 == 0 ? Value::Null() : Value(i % 5),
                             Value(i % 3)}));
    VX_CHECK_OK(r.AppendRow({Value(i % 5),
                             i % 7 == 0 ? Value::Null() : Value(i % 3)}));
  }
  HashJoinOp serial_op(std::make_unique<TableScan>(l),
                       std::make_unique<TableScan>(r), {"a", "b"}, {"a", "b"},
                       JoinType::kLeft);
  auto serial = Collect(&serial_op);
  ASSERT_TRUE(serial.ok());
  ParallelOptions opts;
  opts.num_threads = 4;
  opts.morsel_rows = 3;
  auto parallel =
      ParallelHashJoin(l, r, {"a", "b"}, {"a", "b"}, JoinType::kLeft, opts);
  ASSERT_TRUE(parallel.ok());
  EXPECT_TRUE(parallel->Equals(*serial));
}

TEST(ParallelExecTest, AggregateRowSetMatchesSerial) {
  const Table t = KeyedTable(41, 2000, 30);
  const std::vector<AggSpec> aggs = {{AggOp::kCountStar, "", "n"},
                                     {AggOp::kCount, "v", "cv"},
                                     {AggOp::kSum, "v", "sv"},
                                     {AggOp::kMin, "v", "mn"},
                                     {AggOp::kMax, "v", "mx"}};
  // Integer aggregates merge exactly, so parallel == serial bit-for-bit.
  HashAggregateOp serial_op(std::make_unique<TableScan>(t), {"k"}, aggs);
  auto serial = Collect(&serial_op);
  ASSERT_TRUE(serial.ok());
  for (int threads : kThreadSweep) {
    for (int64_t morsel : kMorselSweep) {
      ParallelOptions opts;
      opts.num_threads = threads;
      opts.morsel_rows = morsel;
      auto parallel = ParallelHashAggregate(t, {"k"}, aggs, opts);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      EXPECT_TRUE(Sorted(*parallel).Equals(Sorted(*serial)))
          << "threads=" << threads << " morsel=" << morsel;
      // Group order is global first-appearance order, like the serial op.
      EXPECT_TRUE(parallel->Equals(*serial))
          << "threads=" << threads << " morsel=" << morsel;
    }
  }
}

TEST(ParallelExecTest, DoubleAggregatesBitIdenticalAcrossThreads) {
  const Table t = KeyedTable(51, 3000, 10);
  const std::vector<AggSpec> aggs = {{AggOp::kSum, "x", "sx"},
                                     {AggOp::kAvg, "x", "ax"}};
  // Chunk boundaries depend only on morsel_rows, so any thread count gives
  // the same FP merge order: results must be bit-identical.
  ParallelOptions base;
  base.morsel_rows = 64;
  base.num_threads = 1;
  auto reference = ParallelHashAggregate(t, {"k"}, aggs, base);
  ASSERT_TRUE(reference.ok());
  for (int threads : {2, 4, 8}) {
    ParallelOptions opts = base;
    opts.num_threads = threads;
    auto out = ParallelHashAggregate(t, {"k"}, aggs, opts);
    ASSERT_TRUE(out.ok());
    EXPECT_TRUE(out->Equals(*reference)) << "threads=" << threads;
  }
  // And row-set equal (within FP rounding) to the serial fold.
  HashAggregateOp serial_op(std::make_unique<TableScan>(t), {"k"}, aggs);
  auto serial = Collect(&serial_op);
  ASSERT_TRUE(serial.ok());
  ASSERT_EQ(reference->num_rows(), serial->num_rows());
  const Table sp = Sorted(*reference);
  const Table ss = Sorted(*serial);
  for (int64_t r = 0; r < sp.num_rows(); ++r) {
    EXPECT_EQ(sp.column(0).GetInt64(r), ss.column(0).GetInt64(r));
    EXPECT_NEAR(sp.column(1).GetDouble(r), ss.column(1).GetDouble(r), 1e-9);
    EXPECT_NEAR(sp.column(2).GetDouble(r), ss.column(2).GetDouble(r), 1e-9);
  }
}

TEST(ParallelExecTest, EmptyAndTinyInputs) {
  const Table empty(Schema({{"k", DataType::kInt64},
                            {"v", DataType::kInt64},
                            {"x", DataType::kDouble}}));
  ParallelOptions opts;
  opts.num_threads = 8;
  opts.morsel_rows = 1;

  // Empty probe, empty build, and both.
  const Table one = KeyedTable(61, 1, 3);
  for (const auto& [probe, build] :
       {std::pair<const Table&, const Table&>{empty, one},
        {one, empty},
        {empty, empty}}) {
    auto out = ParallelHashJoin(probe, build, {"k"}, {"k"}, JoinType::kInner,
                                opts);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->num_rows(), 0);
    EXPECT_EQ(out->num_columns(), 6);
  }

  // Global aggregate over an empty table still yields its single row.
  auto agg = ParallelHashAggregate(
      empty, {}, {{AggOp::kCountStar, "", "n"}, {AggOp::kSum, "v", "s"}},
      opts);
  ASSERT_TRUE(agg.ok());
  ASSERT_EQ(agg->num_rows(), 1);
  EXPECT_EQ(agg->column(0).GetInt64(0), 0);
  EXPECT_TRUE(agg->column(1).IsNull(0));

  // One-morsel input through the driver.
  auto filtered = ParallelFilter(std::make_shared<const Table>(one),
                                 Ge(Col("k"), Lit(int64_t{0})), opts);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->num_rows(), 1);
}

TEST(ParallelExecTest, PlanBuilderUsesParallelOperators) {
  // The builder's join/aggregate are the morsel-parallel operators; EXPLAIN
  // makes that visible while keeping the serial label as a prefix.
  Table t = KeyedTable(71, 10, 3);
  auto plan = PlanBuilder::Scan(t)
                  .Join(PlanBuilder::Scan(t), {"k"}, {"k"})
                  .Aggregate({"k"}, {{AggOp::kCountStar, "", "n"}});
  const std::string explain = plan.Explain();
  EXPECT_NE(explain.find("[morsel]"), std::string::npos);
}

TEST(ParallelExecTest, ThreadBudgetResolutionOrder) {
  // ExecThreads(): scoped override > process default > env/hardware.
  const int ambient = ExecThreads();
  SetDefaultExecThreads(3);
  EXPECT_EQ(ExecThreads(), 3);
  {
    ScopedExecThreads scoped(5);
    EXPECT_EQ(ExecThreads(), 5);
    {
      ScopedExecThreads inner(0);  // no-op scope keeps the outer override
      EXPECT_EQ(ExecThreads(), 5);
    }
  }
  EXPECT_EQ(ExecThreads(), 3);
  SetDefaultExecThreads(0);  // restore automatic resolution
  EXPECT_EQ(ExecThreads(), ambient);
}

TEST(ParallelForTest, FirstErrorWinsAndSkipsRemaining) {
  Status st = ThreadPool::Default()->ParallelFor(
      0, 1000, /*grain=*/1,
      [&](std::size_t begin, std::size_t) -> Status {
        if (begin == 3) return Status::Internal("boom");
        if (begin == 7) return Status::InvalidArgument("later");
        return Status::OK();
      },
      /*max_threads=*/2);
  // A failing chunk's error surfaces; once the failure flag is up the
  // remaining chunks are skipped, never overwriting the first error.
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find(st.IsInternal() ? "boom" : "later"),
            std::string::npos);
}

TEST(ParallelForTest, PreCancelledTokenRunsNothing) {
  CancelToken token = CancelToken::Make();
  token.Cancel();
  ScopedCancelToken scope(token);
  std::atomic<int> executed{0};
  const Status st = ThreadPool::Default()->ParallelFor(
      0, 1000, /*grain=*/1,
      [&](std::size_t, std::size_t) -> Status {
        ++executed;
        return Status::OK();
      },
      4);
  EXPECT_TRUE(st.IsCancelled()) << st.ToString();
  EXPECT_EQ(executed.load(), 0);  // checked before the first grain
}

TEST(ParallelForTest, CancelMidRunStopsAtGrainBoundary) {
  CancelToken token = CancelToken::Make();
  ScopedCancelToken scope(token);
  std::atomic<int> executed{0};
  const Status st = ThreadPool::Default()->ParallelFor(
      0, 10000, /*grain=*/1,
      [&](std::size_t begin, std::size_t) -> Status {
        if (begin == 0) token.Cancel();
        ++executed;
        return Status::OK();
      },
      2);
  EXPECT_TRUE(st.IsCancelled()) << st.ToString();
  // Grains already in flight may finish; the bulk is skipped.
  EXPECT_LT(executed.load(), 10000);
}

TEST(ParallelForTest, ExpiredDeadlineSurfacesAsDeadlineExceeded) {
  ScopedCancelToken scope(CancelToken().WithDeadlineAfter(0.0));
  const Status st = ThreadPool::Default()->ParallelFor(
      0, 100, /*grain=*/10,
      [](std::size_t, std::size_t) -> Status { return Status::OK(); }, 2);
  EXPECT_TRUE(st.IsDeadlineExceeded()) << st.ToString();
}

TEST(ParallelForTest, VoidOverloadIgnoresAmbientCancellation) {
  // The exception-contract overload has no error channel, so it is not
  // cancellable: an ambient cancelled token must neither abort nor skip.
  CancelToken token = CancelToken::Make();
  token.Cancel();
  ScopedCancelToken scope(token);
  std::atomic<int> executed{0};
  ThreadPool::Default()->ParallelFor(100, [&](std::size_t) { ++executed; });
  EXPECT_EQ(executed.load(), 100);
}

TEST(ParallelForTest, ExceptionsBecomeStatus) {
  Status st = ThreadPool::Default()->ParallelFor(
      0, 8, /*grain=*/1,
      [](std::size_t begin, std::size_t) -> Status {
        if (begin == 5) throw std::runtime_error("kaput");
        return Status::OK();
      },
      4);
  EXPECT_TRUE(st.IsInternal());
  EXPECT_NE(st.ToString().find("kaput"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Sort-merge join (exec/merge_join.h): bit-identical to the hash joins on
// sorted inputs — duplicates, NULL keys, NaN keys, every join type, any
// thread count / morsel size, encoding off and forced — plus planner
// selection and the runtime hash fallback.
// ---------------------------------------------------------------------------

/// Random table with a dup-heavy INT64 key (~10% NULL), a low-cardinality
/// DOUBLE key (with NaN and NULL), and an INT64 payload.
Table MergeKeyedTable(uint64_t seed, int64_t rows, int64_t key_range) {
  Rng rng(seed);
  Table t(Schema({{"k", DataType::kInt64},
                  {"dk", DataType::kDouble},
                  {"v", DataType::kInt64}}));
  for (int64_t r = 0; r < rows; ++r) {
    const Value k = rng.Bernoulli(0.1)
                        ? Value::Null()
                        : Value(static_cast<int64_t>(
                              rng.Uniform(static_cast<uint64_t>(key_range))));
    Value dk;
    if (rng.Bernoulli(0.05)) {
      dk = Value::Null();
    } else if (rng.Bernoulli(0.1)) {
      dk = Value(std::numeric_limits<double>::quiet_NaN());
    } else {
      dk = Value(static_cast<double>(rng.Uniform(6)) / 2.0);
    }
    VX_CHECK_OK(t.AppendRow({k, dk, Value(rng.UniformRange(-100, 100))}));
  }
  return t;
}

const JoinType kAllJoinTypes[] = {JoinType::kInner, JoinType::kLeft,
                                  JoinType::kSemi, JoinType::kAnti};

TEST(MergeJoinTest, ParityWithHashJoinOnInt64Key) {
  const Table probe = SortTable(MergeKeyedTable(41, 700, 25), {{0, true}});
  const Table build = SortTable(MergeKeyedTable(42, 300, 25), {{0, true}});
  for (JoinType type : kAllJoinTypes) {
    auto expected = ParallelHashJoin(probe, build, {"k"}, {"k"}, type);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    for (int threads : kThreadSweep) {
      for (int64_t morsel : kMorselSweep) {
        ParallelOptions opts;
        opts.num_threads = threads;
        opts.morsel_rows = morsel;
        auto got = ParallelMergeJoin(probe, build, {"k"}, {"k"}, type, opts);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        EXPECT_TRUE(got->Equals(*expected))
            << JoinTypeName(type) << " threads=" << threads
            << " morsel=" << morsel;
      }
    }
  }
}

TEST(MergeJoinTest, ParityOnDoubleKeyWithNaN) {
  // NaN keys: equal to themselves under the CompareRows total order on
  // both paths (hash compares via CompareRows too), NULLs never match.
  const Table probe = SortTable(MergeKeyedTable(43, 400, 10), {{1, true}});
  const Table build = SortTable(MergeKeyedTable(44, 200, 10), {{1, true}});
  for (JoinType type : kAllJoinTypes) {
    auto expected = ParallelHashJoin(probe, build, {"dk"}, {"dk"}, type);
    ASSERT_TRUE(expected.ok());
    ParallelOptions opts;
    opts.num_threads = 8;
    opts.morsel_rows = 17;
    auto got = ParallelMergeJoin(probe, build, {"dk"}, {"dk"}, type, opts);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(got->Equals(*expected)) << JoinTypeName(type);
  }
}

TEST(MergeJoinTest, ParityOnMultiColumnKey) {
  const Table probe =
      SortTable(MergeKeyedTable(45, 500, 6), {{0, true}, {2, true}});
  const Table build =
      SortTable(MergeKeyedTable(46, 250, 6), {{0, true}, {2, true}});
  for (JoinType type : kAllJoinTypes) {
    auto expected =
        ParallelHashJoin(probe, build, {"k", "v"}, {"k", "v"}, type);
    ASSERT_TRUE(expected.ok());
    ParallelOptions opts;
    opts.num_threads = 8;
    opts.morsel_rows = 13;
    auto got =
        ParallelMergeJoin(probe, build, {"k", "v"}, {"k", "v"}, type, opts);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(got->Equals(*expected)) << JoinTypeName(type);
  }
}

TEST(MergeJoinTest, RleRunFastPathMatchesHash) {
  // Edge-table shape: dense duplicate keys, no NULLs, build key column
  // RLE-encoded — the run-at-a-time path joins whole runs without decode.
  Rng rng(47);
  Table probe(Schema({{"id", DataType::kInt64}, {"pv", DataType::kDouble}}));
  for (int64_t r = 0; r < 300; ++r) {
    VX_CHECK_OK(probe.AppendRow(
        {Value(static_cast<int64_t>(rng.Uniform(40))), Value(rng.NextDouble())}));
  }
  probe = SortTable(probe, {{0, true}});
  Table build(Schema({{"src", DataType::kInt64}, {"bv", DataType::kInt64}}));
  for (int64_t r = 0; r < 600; ++r) {
    VX_CHECK_OK(build.AppendRow(
        {Value(static_cast<int64_t>(rng.Uniform(40))),
         Value(rng.UniformRange(0, 9))}));
  }
  build = SortTable(build, {{0, true}});
  Table encoded_build = build;
  ASSERT_GT(encoded_build.EncodeColumns(EncodingMode::kForce), 0);
  ASSERT_NE(encoded_build.column(0).rle_runs(), nullptr);
  for (JoinType type : kAllJoinTypes) {
    auto expected = ParallelHashJoin(probe, build, {"id"}, {"src"}, type);
    ASSERT_TRUE(expected.ok());
    for (int threads : kThreadSweep) {
      ParallelOptions opts;
      opts.num_threads = threads;
      opts.morsel_rows = 19;
      auto got =
          ParallelMergeJoin(probe, encoded_build, {"id"}, {"src"}, type, opts);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_TRUE(got->Equals(*expected))
          << JoinTypeName(type) << " threads=" << threads;
    }
  }
}

TEST(MergeJoinTest, EmptyInputs) {
  const Table some = SortTable(MergeKeyedTable(48, 50, 5), {{0, true}});
  Table empty(some.schema());
  for (JoinType type : kAllJoinTypes) {
    auto a = ParallelMergeJoin(empty, some, {"k"}, {"k"}, type);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a->num_rows(), 0);
    auto b = ParallelMergeJoin(some, empty, {"k"}, {"k"}, type);
    auto expected = ParallelHashJoin(some, empty, {"k"}, {"k"}, type);
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(expected.ok());
    EXPECT_TRUE(b->Equals(*expected)) << JoinTypeName(type);
  }
}

TEST(MergeJoinTest, PlannerPicksMergeOnlyWhenBothSidesSorted) {
  ScopedMergeJoin on(true);  // pin against a VERTEXICA_MERGE_JOIN=off env
  const Table sorted_a = SortTable(MergeKeyedTable(49, 100, 8), {{0, true}});
  const Table sorted_b = SortTable(MergeKeyedTable(50, 80, 8), {{0, true}});
  const Table unsorted = MergeKeyedTable(51, 80, 8);
  {
    auto plan = PlanBuilder::Scan(sorted_a)
                    .Join(PlanBuilder::Scan(sorted_b), {"k"}, {"k"});
    EXPECT_NE(plan.Explain().find("MergeJoin"), std::string::npos)
        << plan.Explain();
  }
  {
    auto plan = PlanBuilder::Scan(sorted_a)
                    .Join(PlanBuilder::Scan(unsorted), {"k"}, {"k"});
    EXPECT_EQ(plan.Explain().find("MergeJoin"), std::string::npos)
        << plan.Explain();
    EXPECT_NE(plan.Explain().find("HashJoin"), std::string::npos);
  }
  {
    // The ambient knob turns selection off wholesale.
    ScopedMergeJoin off(false);
    auto plan = PlanBuilder::Scan(sorted_a)
                    .Join(PlanBuilder::Scan(sorted_b), {"k"}, {"k"});
    EXPECT_EQ(plan.Explain().find("MergeJoin"), std::string::npos);
  }
  // Filter/Project/Rename propagate the order claim through the plan.
  {
    auto plan = PlanBuilder::Scan(sorted_a)
                    .Filter(Gt(Col("v"), Lit(int64_t{0})))
                    .Project({{"k", Col("k")}, {"v", Col("v")}})
                    .Join(PlanBuilder::Scan(sorted_b), {"k"}, {"k"});
    EXPECT_NE(plan.Explain().find("MergeJoin"), std::string::npos)
        << plan.Explain();
  }
}

TEST(MergeJoinTest, RuntimeFallsBackToHashWhenUnsorted) {
  // An op constructed directly over unsorted inputs (no metadata, data
  // out of order) must take the hash path and still return hash results.
  const Table probe = MergeKeyedTable(52, 200, 10);
  const Table build = MergeKeyedTable(53, 100, 10);
  auto expected = ParallelHashJoin(probe, build, {"k"}, {"k"}, JoinType::kLeft);
  ASSERT_TRUE(expected.ok());
  JoinPathStats stats;
  {
    ScopedJoinStatsCollector collector(&stats);
    ParallelMergeJoinOp op(std::make_unique<TableScan>(probe),
                           std::make_unique<TableScan>(build), {"k"}, {"k"},
                           JoinType::kLeft);
    auto got = Collect(&op);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(got->Equals(*expected));
  }
  EXPECT_EQ(stats.merge_joins, 0);
  EXPECT_EQ(stats.hash_joins, 1);
  EXPECT_EQ(stats.hash_rows, expected->num_rows());
}

TEST(MergeJoinTest, StatsCollectorCountsMergePath) {
  const Table probe = SortTable(MergeKeyedTable(54, 200, 10), {{0, true}});
  const Table build = SortTable(MergeKeyedTable(55, 100, 10), {{0, true}});
  JoinPathStats stats;
  {
    ScopedJoinStatsCollector collector(&stats);
    auto got = ParallelMergeJoin(probe, build, {"k"}, {"k"}, JoinType::kInner);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(stats.merge_rows, got->num_rows());
  }
  EXPECT_EQ(stats.merge_joins, 1);
  EXPECT_EQ(stats.hash_joins, 0);
  EXPECT_EQ(AmbientJoinStats(), nullptr);  // scope restored
}

TEST(MergeJoinTest, OutputCarriesProbeOrder) {
  // The join's output declares the probe order, so a second join can
  // merge again — the superstep triple-join chain.
  const Table probe = SortTable(MergeKeyedTable(56, 200, 10), {{0, true}});
  const Table build = SortTable(MergeKeyedTable(57, 100, 10), {{0, true}});
  auto out = ParallelMergeJoin(probe, build, {"k"}, {"k"}, JoinType::kLeft);
  ASSERT_TRUE(out.ok());
  ASSERT_FALSE(out->sort_order().empty());
  EXPECT_EQ(out->sort_order()[0].column, 0);
  EXPECT_TRUE(out->sort_order()[0].ascending);
  ASSERT_TRUE(TableSortedOnKeys(*out, {0}));
}

// ---------------------------------------------------------------------------
// Fused selection-vector path (exec/vectorized.h): the `vectorized` knob is
// a pure physical-plan swap, so every random σ/π/join/agg plan — NULLs,
// NaN, strings, encoded columns — must produce *byte-identical* tables with
// the knob on and off, at 1 and 8 threads.
// ---------------------------------------------------------------------------

/// Random wide table: k INT64 (runs, RLE-friendly), v INT64 (~10% NULL),
/// x DOUBLE (~10% NULL, ~5% NaN), s STRING (low cardinality,
/// dict-friendly), b BOOL (~10% NULL).
Table FuzzTable(uint64_t seed, int64_t rows) {
  Rng rng(seed);
  const char* cities[] = {"bos", "nyc", "sfo", "chi"};
  Table t(Schema({{"k", DataType::kInt64},
                  {"v", DataType::kInt64},
                  {"x", DataType::kDouble},
                  {"s", DataType::kString},
                  {"b", DataType::kBool}}));
  int64_t run_key = 0;
  for (int64_t r = 0; r < rows; ++r) {
    if (rng.Bernoulli(0.02)) run_key = rng.UniformRange(0, 20);
    const double x = rng.Bernoulli(0.05)
                         ? std::numeric_limits<double>::quiet_NaN()
                         : rng.NextDouble() * 200 - 100;
    VX_CHECK_OK(t.AppendRow(
        {Value(run_key),
         rng.Bernoulli(0.1) ? Value::Null()
                            : Value(rng.UniformRange(-100, 100)),
         rng.Bernoulli(0.1) ? Value::Null() : Value(x),
         Value(std::string(cities[rng.Uniform(4)])),
         rng.Bernoulli(0.1) ? Value::Null() : Value(rng.Bernoulli(0.5))}));
  }
  return t;
}

/// A random predicate: 1-3 pushable conjuncts over the FuzzTable columns,
/// plus (with probability ~1/4) a computed conjunct that forces the
/// interpreter fallback — the fallback must agree with itself too.
ExprPtr FuzzPredicate(Rng* rng) {
  auto conjunct = [&]() -> ExprPtr {
    switch (rng->Uniform(5)) {
      case 0:
        return Ge(Col("k"), Lit(rng->UniformRange(0, 20)));
      case 1:
        return Lt(Col("v"), Lit(rng->UniformRange(-50, 50)));
      case 2:
        return Gt(Col("x"), Lit(rng->NextDouble() * 100 - 50));
      case 3:
        return Eq(Col("s"), Lit(std::string(rng->Bernoulli(0.5) ? "bos"
                                                                : "nyc")));
      default:
        return Eq(Col("b"), Lit(rng->Bernoulli(0.5)));
    }
  };
  ExprPtr pred = conjunct();
  const uint64_t extra = rng->Uniform(3);
  for (uint64_t i = 0; i < extra; ++i) pred = And(std::move(pred), conjunct());
  if (rng->Bernoulli(0.25)) {
    // Not pushable: exercises the residual/interpreter path under both
    // knob settings.
    pred = And(std::move(pred),
               Ge(Mul(Col("v"), Lit(int64_t{1})), Lit(int64_t{-200})));
  }
  return pred;
}

/// Random projection: column refs in random order, a literal output, and
/// (with probability ~1/4) a computed column that forces the fallback.
std::vector<ProjectionSpec> FuzzProjection(Rng* rng) {
  std::vector<ProjectionSpec> proj;
  const char* cols[] = {"k", "v", "x", "s", "b"};
  for (const char* c : cols) {
    if (rng->Bernoulli(0.7)) proj.push_back({c, Col(c)});
  }
  if (proj.empty()) proj.push_back({"k", Col("k")});
  if (rng->Bernoulli(0.5)) proj.push_back({"tag", Lit(int64_t{7})});
  if (rng->Bernoulli(0.25)) {
    proj.push_back({"v2", Mul(Col("v"), Lit(int64_t{2}))});
  }
  return proj;
}

/// Runs `fn` under the given knob settings and returns its table.
template <typename Fn>
Table RunWithKnobs(bool vectorized, int threads, const Fn& fn) {
  ScopedVectorized vec(vectorized);
  ScopedExecThreads scoped_threads(threads);
  auto result = fn();
  VX_CHECK_OK(result.status());
  return std::move(result).ValueOrDie();
}

TEST(VectorizedTest, RandomSigmaPiPlansBitIdenticalOnVsOff) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed * 977);
    Table plain = FuzzTable(seed, 700);
    Table encoded = plain;
    encoded.EncodeColumns(EncodingMode::kForce);
    const ExprPtr pred = FuzzPredicate(&rng);
    const auto proj = FuzzProjection(&rng);
    for (const Table& t : {plain, encoded}) {
      const auto shared = std::make_shared<const Table>(t);
      ParallelOptions opts;
      opts.morsel_rows = 97;  // force many morsels
      auto run = [&] {
        return ParallelFilterProject(shared, pred, proj, opts);
      };
      const Table reference = RunWithKnobs(false, 1, run);
      for (int threads : {1, 8}) {
        for (bool vectorized : {false, true}) {
          const Table out = RunWithKnobs(vectorized, threads, run);
          EXPECT_TRUE(out.Equals(reference))
              << "seed=" << seed << " vectorized=" << vectorized
              << " threads=" << threads;
        }
      }
    }
  }
}

TEST(VectorizedTest, FilterAndProjectKernelsMatchAcrossKnob) {
  for (uint64_t seed = 100; seed < 106; ++seed) {
    Rng rng(seed);
    Table t = FuzzTable(seed, 500);
    if (seed % 2 == 0) t.EncodeColumns(EncodingMode::kForce);
    const auto shared = std::make_shared<const Table>(t);
    const ExprPtr pred = FuzzPredicate(&rng);
    const auto proj = FuzzProjection(&rng);
    ParallelOptions opts;
    opts.morsel_rows = 61;
    const Table filter_ref =
        RunWithKnobs(false, 1, [&] { return ParallelFilter(shared, pred, opts); });
    const Table project_ref =
        RunWithKnobs(false, 1, [&] { return ParallelProject(shared, proj, opts); });
    for (int threads : {1, 8}) {
      EXPECT_TRUE(RunWithKnobs(true, threads, [&] {
                    return ParallelFilter(shared, pred, opts);
                  }).Equals(filter_ref))
          << "seed=" << seed << " threads=" << threads;
      EXPECT_TRUE(RunWithKnobs(true, threads, [&] {
                    return ParallelProject(shared, proj, opts);
                  }).Equals(project_ref))
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

TEST(VectorizedTest, JoinAndAggregatePlansBitIdenticalOnVsOff) {
  // The batched hash kernel must hash byte-identically to JoinKeyHash, and
  // aggregation downstream of fused pipelines must see identical input.
  const Table probe = FuzzTable(201, 600);
  Table build = FuzzTable(202, 250);
  build.EncodeColumns(EncodingMode::kForce);
  const std::vector<AggSpec> aggs = {{AggOp::kCountStar, "", "n"},
                                     {AggOp::kSum, "v", "sv"}};
  ParallelOptions opts;
  opts.morsel_rows = 83;
  for (JoinType type :
       {JoinType::kInner, JoinType::kLeft, JoinType::kSemi, JoinType::kAnti}) {
    const Table join_ref = RunWithKnobs(false, 1, [&] {
      return ParallelHashJoin(probe, build, {"k", "s"}, {"k", "s"}, type,
                              opts);
    });
    for (int threads : {1, 8}) {
      for (bool vectorized : {false, true}) {
        EXPECT_TRUE(RunWithKnobs(vectorized, threads, [&] {
                      return ParallelHashJoin(probe, build, {"k", "s"},
                                              {"k", "s"}, type, opts);
                    }).Equals(join_ref))
            << JoinTypeName(type) << " vectorized=" << vectorized
            << " threads=" << threads;
      }
    }
  }
  const Table agg_ref = RunWithKnobs(false, 1, [&] {
    return ParallelHashAggregate(probe, {"k"}, aggs, opts);
  });
  for (bool vectorized : {false, true}) {
    EXPECT_TRUE(RunWithKnobs(vectorized, 8, [&] {
                  return ParallelHashAggregate(probe, {"k"}, aggs, opts);
                }).Equals(agg_ref))
        << "vectorized=" << vectorized;
  }
}

TEST(VectorizedTest, KnobResolutionOrder) {
  // Same contract as the merge-join knob: scoped override beats the
  // process default; -1 restores automatic resolution.
  const bool ambient = VectorizedEnabled();
  SetDefaultVectorized(0);
  EXPECT_FALSE(VectorizedEnabled());
  {
    ScopedVectorized on(true);
    EXPECT_TRUE(VectorizedEnabled());
    {
      ScopedVectorized off(false);
      EXPECT_FALSE(VectorizedEnabled());
    }
    EXPECT_TRUE(VectorizedEnabled());
  }
  EXPECT_FALSE(VectorizedEnabled());
  SetDefaultVectorized(-1);
  EXPECT_EQ(VectorizedEnabled(), ambient);
}

TEST(VectorizedTest, ExecKnobsCaptureAndInstallRoundTrip) {
  KernelStats block;
  ScopedVectorized off(false);
  ScopedKernelStats stats(&block);
  const ExecKnobs captured = ExecKnobs::Capture();
  EXPECT_FALSE(captured.vectorized);
  EXPECT_EQ(captured.kernel_stats, &block);
  Status st = ThreadPool::Default()->ParallelFor(
      0, 1, 1,
      [&](std::size_t, std::size_t) -> Status {
        ScopedExecKnobs install(captured);
        if (VectorizedEnabled()) return Status::Internal("knob not installed");
        if (AmbientKernelStats() != &block) {
          return Status::Internal("collector not installed");
        }
        return Status::OK();
      },
      2);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(KernelStatsTest, CountersAreDeterministicAcrossThreadsAndPerScope) {
  const Table t = FuzzTable(301, 2000);
  const auto shared = std::make_shared<const Table>(t);
  const ExprPtr pred = And(Ge(Col("k"), Lit(int64_t{3})),
                           Lt(Col("v"), Lit(int64_t{40})));
  const std::vector<ProjectionSpec> proj = {{"k", Col("k")}, {"v", Col("v")}};
  ParallelOptions opts;
  opts.morsel_rows = 128;
  auto measure = [&](bool vectorized, int threads) {
    KernelStats block;
    ScopedKernelStats scope(&block);
    ScopedVectorized vec(vectorized);
    ScopedExecThreads scoped_threads(threads);
    VX_CHECK_OK(ParallelFilterProject(shared, pred, proj, opts).status());
    return Snapshot(block);
  };
  const KernelStatsSnapshot fused1 = measure(true, 1);
  const KernelStatsSnapshot fused8 = measure(true, 8);
  const KernelStatsSnapshot legacy1 = measure(false, 1);
  const KernelStatsSnapshot legacy8 = measure(false, 8);
  // Morsel boundaries don't depend on threads, so neither do the counters.
  EXPECT_EQ(fused1.bytes_materialized, fused8.bytes_materialized);
  EXPECT_EQ(fused1.fused_batches, fused8.fused_batches);
  EXPECT_EQ(legacy1.bytes_materialized, legacy8.bytes_materialized);
  EXPECT_EQ(legacy1.legacy_batches, legacy8.legacy_batches);
  // The fused path exists to materialize less.
  EXPECT_GT(fused1.fused_batches, 0);
  EXPECT_EQ(fused1.legacy_batches, 0);
  EXPECT_GT(legacy1.legacy_batches, 0);
  EXPECT_LT(fused1.bytes_materialized, legacy1.bytes_materialized);
  // Per-scope isolation: a fresh block starts at zero even though another
  // run just counted (nothing is process-wide).
  KernelStats fresh;
  EXPECT_EQ(Snapshot(fresh).bytes_materialized, 0);
  // And with no collector installed, counting is off entirely.
  EXPECT_EQ(AmbientKernelStats(), nullptr);
}

TEST(ParallelForTest, NestedCallsDoNotDeadlock) {
  // A pool task fanning out on the same pool must complete (the caller
  // participates in draining chunks).
  std::atomic<int> total{0};
  Status st = ThreadPool::Default()->ParallelFor(
      0, 4, 1,
      [&](std::size_t, std::size_t) {
        return ThreadPool::Default()->ParallelFor(
            0, 4, 1,
            [&](std::size_t, std::size_t) {
              total.fetch_add(1);
              return Status::OK();
            });
      },
      4);
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(total.load(), 16);
}

}  // namespace
}  // namespace vertexica
