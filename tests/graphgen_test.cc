// Unit tests for graph generation, dataset presets, metadata synthesis and
// SNAP I/O.

#include <gtest/gtest.h>

#include <set>

#include "graphgen/datasets.h"
#include "graphgen/generators.h"
#include "graphgen/metadata.h"
#include "graphgen/snap_io.h"

namespace vertexica {
namespace {

TEST(GraphTest, AddEdgeTracksWeights) {
  Graph g;
  g.num_vertices = 3;
  g.AddEdge(0, 1);
  g.AddEdge(1, 2, 2.5);  // first weighted edge back-fills default weights
  ASSERT_EQ(g.num_edges(), 2);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0), 1.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1), 2.5);
}

TEST(GraphTest, AsDirectedExpandsUndirected) {
  Graph g;
  g.num_vertices = 3;
  g.directed = false;
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  Graph d = g.AsDirected();
  EXPECT_TRUE(d.directed);
  EXPECT_EQ(d.num_edges(), 4);
}

TEST(GraphTest, WithReverseEdgesDoubles) {
  Graph g;
  g.num_vertices = 2;
  g.AddEdge(0, 1, 3.0);
  Graph r = g.WithReverseEdges();
  ASSERT_EQ(r.num_edges(), 2);
  EXPECT_EQ(r.src[1], 1);
  EXPECT_EQ(r.dst[1], 0);
  EXPECT_DOUBLE_EQ(r.EdgeWeight(1), 3.0);
}

TEST(GraphTest, OutDegrees) {
  Graph g;
  g.num_vertices = 3;
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  auto deg = g.OutDegrees();
  EXPECT_EQ(deg[0], 2);
  EXPECT_EQ(deg[1], 1);
  EXPECT_EQ(deg[2], 0);
}

TEST(CsrTest, BuildMatchesEdges) {
  Graph g;
  g.num_vertices = 4;
  g.AddEdge(2, 0, 5.0);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(0, 3, 2.0);
  Csr csr = Csr::Build(g);
  EXPECT_EQ(csr.num_vertices(), 4);
  EXPECT_EQ(csr.degree(0), 2);
  EXPECT_EQ(csr.degree(1), 0);
  EXPECT_EQ(csr.degree(2), 1);
  std::set<int64_t> n0(csr.neighbors.begin() + csr.offsets[0],
                       csr.neighbors.begin() + csr.offsets[1]);
  EXPECT_EQ(n0, (std::set<int64_t>{1, 3}));
  EXPECT_DOUBLE_EQ(csr.weights[static_cast<size_t>(csr.offsets[2])], 5.0);
}

TEST(GeneratorTest, ErdosRenyiDims) {
  Graph g = GenerateErdosRenyi(100, 500, 1);
  EXPECT_EQ(g.num_vertices, 100);
  EXPECT_EQ(g.num_edges(), 500);
  for (int64_t e = 0; e < g.num_edges(); ++e) {
    EXPECT_NE(g.src[static_cast<size_t>(e)], g.dst[static_cast<size_t>(e)]);
    EXPECT_LT(g.src[static_cast<size_t>(e)], 100);
    EXPECT_LT(g.dst[static_cast<size_t>(e)], 100);
  }
}

TEST(GeneratorTest, DeterministicPerSeed) {
  Graph a = GenerateRmat(256, 1000, 7);
  Graph b = GenerateRmat(256, 1000, 7);
  EXPECT_EQ(a.src, b.src);
  EXPECT_EQ(a.dst, b.dst);
  Graph c = GenerateRmat(256, 1000, 8);
  EXPECT_NE(a.src, c.src);
}

TEST(GeneratorTest, RmatIsSkewed) {
  Graph g = GenerateRmat(1024, 10000, 3);
  auto deg = g.OutDegrees();
  std::sort(deg.begin(), deg.end(), std::greater<>());
  // Top 10% of vertices should hold well over 25% of edges (power law).
  int64_t top = 0;
  for (size_t i = 0; i < deg.size() / 10; ++i) top += deg[i];
  EXPECT_GT(top, g.num_edges() / 4);
}

TEST(GeneratorTest, BarabasiAlbertDegrees) {
  Graph g = GenerateBarabasiAlbert(500, 3, 5);
  EXPECT_EQ(g.num_vertices, 500);
  // Every non-seed vertex contributes exactly 3 out-edges.
  auto deg = g.OutDegrees();
  for (int64_t v = 4; v < 500; ++v) {
    EXPECT_EQ(deg[static_cast<size_t>(v)], 3);
  }
}

TEST(GeneratorTest, WattsStrogatzRing) {
  Graph g = GenerateWattsStrogatz(100, 4, 0.0, 2);
  EXPECT_FALSE(g.directed);
  EXPECT_EQ(g.num_edges(), 100 * 2);  // k/2 edges per vertex
}

TEST(GeneratorTest, BipartiteRatingsInRange) {
  Graph g = GenerateBipartite(50, 20, 500, 4);
  EXPECT_EQ(g.num_vertices, 70);
  EXPECT_EQ(g.num_edges(), 500);
  for (int64_t e = 0; e < g.num_edges(); ++e) {
    EXPECT_LT(g.src[static_cast<size_t>(e)], 50);   // user side
    EXPECT_GE(g.dst[static_cast<size_t>(e)], 50);   // item side
    EXPECT_GE(g.EdgeWeight(e), 1.0);
    EXPECT_LE(g.EdgeWeight(e), 5.0);
  }
}

TEST(GeneratorTest, AssignRandomWeights) {
  Graph g = GenerateErdosRenyi(50, 200, 1);
  AssignRandomWeights(&g, 2.0, 4.0, 9);
  ASSERT_EQ(g.weight.size(), 200u);
  for (double w : g.weight) {
    EXPECT_GE(w, 2.0);
    EXPECT_LE(w, 4.0);
  }
}

TEST(DatasetTest, PresetDimensionsMatchPaper) {
  EXPECT_EQ(DatasetDimensions(DatasetId::kTwitter).num_vertices, 81306);
  EXPECT_EQ(DatasetDimensions(DatasetId::kGPlus).num_edges, 13673453);
  EXPECT_EQ(DatasetDimensions(DatasetId::kLiveJournal).num_vertices, 4847571);
  EXPECT_STREQ(DatasetName(DatasetId::kTwitter), "Twitter");
}

TEST(DatasetTest, ScaledGeneration) {
  Graph g = MakeDataset(DatasetId::kTwitter, 0.01);
  EXPECT_NEAR(static_cast<double>(g.num_vertices), 813, 5);
  EXPECT_NEAR(static_cast<double>(g.num_edges()), 17681, 200);
  EXPECT_FALSE(g.weight.empty());
}

TEST(MetadataTest, NodeSchemaMatchesPaperSpec) {
  Table t = GenerateNodeMetadata(100, 1);
  // id + 24 uniform + 8 zipf + 18 float + 10 string = 61 columns.
  EXPECT_EQ(t.num_columns(), 61);
  EXPECT_EQ(t.num_rows(), 100);
  EXPECT_TRUE(t.IsConsistent());
  EXPECT_EQ(t.schema().field(1).type, DataType::kInt64);    // u0
  EXPECT_EQ(t.schema().field(25).type, DataType::kInt64);   // z0
  EXPECT_EQ(t.schema().field(33).type, DataType::kDouble);  // f0
  EXPECT_EQ(t.schema().field(51).type, DataType::kString);  // s0
}

TEST(MetadataTest, UniformCardinalitiesVary) {
  Table t = GenerateNodeMetadata(2000, 2);
  // u0 has cardinality 2: values in {0, 1}.
  const auto& u0 = t.column(1).ints();
  for (int64_t v : u0) {
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 1);
  }
  // The last uniform column has a huge domain: expect many distinct values.
  std::set<int64_t> distinct(t.column(24).ints().begin(),
                             t.column(24).ints().end());
  EXPECT_GT(distinct.size(), 1900u);
}

TEST(MetadataTest, ZipfColumnsSkewed) {
  Table t = GenerateNodeMetadata(5000, 3);
  // Highest-skew zipf column z7 (index 32): value 1 dominates.
  const auto& z7 = t.column(32).ints();
  int64_t ones = std::count(z7.begin(), z7.end(), 1);
  EXPECT_GT(ones, 1500);
}

TEST(MetadataTest, EdgeMetadataSchemaAndTypes) {
  Graph g = GenerateErdosRenyi(50, 300, 1);
  Table t = GenerateEdgeMetadata(g, 7);
  EXPECT_EQ(t.num_rows(), 300);
  ASSERT_TRUE(t.schema().HasField("type"));
  std::set<std::string> types(t.ColumnByName("type")->strings().begin(),
                              t.ColumnByName("type")->strings().end());
  for (const auto& ty : types) {
    EXPECT_TRUE(ty == "friend" || ty == "family" || ty == "classmate");
  }
  EXPECT_EQ(types.size(), 3u);
}

TEST(SnapIoTest, ParseBasic) {
  auto g = ParseSnapEdgeList("# comment\n0\t1\n1\t2\n\n2\t0\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices, 3);
  EXPECT_EQ(g->num_edges(), 3);
}

TEST(SnapIoTest, RemapsSparseIds) {
  auto g = ParseSnapEdgeList("1000 42\n42 7\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices, 3);  // dense remap
  EXPECT_EQ(g->src[0], 0);
  EXPECT_EQ(g->dst[0], 1);
  EXPECT_EQ(g->src[1], 1);
  EXPECT_EQ(g->dst[1], 2);
}

TEST(SnapIoTest, ParsesWeights) {
  auto g = ParseSnapEdgeList("0 1 2.5\n1 0 3.5\n");
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->EdgeWeight(0), 2.5);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(1), 3.5);
}

TEST(SnapIoTest, BadLineFails) {
  EXPECT_TRUE(ParseSnapEdgeList("0 x\n").status().IsIoError());
}

TEST(SnapIoTest, RoundTripThroughFile) {
  Graph g = GenerateErdosRenyi(20, 50, 1);
  AssignRandomWeights(&g, 1.0, 2.0, 2);
  const std::string path = testing::TempDir() + "/vx_snap_roundtrip.txt";
  ASSERT_TRUE(WriteSnapEdgeList(g, path).ok());
  auto back = ReadSnapEdgeList(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_edges(), g.num_edges());
  EXPECT_EQ(back->num_vertices, g.num_vertices);
}

TEST(SnapIoTest, MissingFileFails) {
  EXPECT_TRUE(ReadSnapEdgeList("/nonexistent/nope.txt").status().IsIoError());
}

}  // namespace
}  // namespace vertexica
