/// \file implicit_graph.cpp
/// \brief §3.4's opening move: "in many cases, the graphs may be implicit
/// in the relational data and need to be extracted in the first place."
/// Starting from a plain relational purchases table (CSV), extract a
/// customer co-purchase graph, then analyse it — all inside the engine.
///
/// Run: ./implicit_graph

#include <cstdio>

#include "common/random.h"
#include "exec/plan_builder.h"
#include "sqlgraph/graph_extraction.h"
#include "sqlgraph/sql_common.h"
#include "sqlgraph/sql_pagerank.h"
#include "storage/csv.h"

using namespace vertexica;  // NOLINT — example brevity

int main() {
  // ---- The "raw data": a purchases relation, as it would arrive in CSV.
  constexpr int64_t kCustomers = 400;
  constexpr int64_t kProducts = 60;
  Rng rng(55);
  ZipfDistribution product_popularity(kProducts, 1.1);
  std::string csv = "customer,product,amount\n";
  for (int i = 0; i < 5000; ++i) {
    csv += std::to_string(rng.Uniform(kCustomers)) + "," +
           std::to_string(product_popularity.Sample(&rng) - 1) + "," +
           std::to_string(1 + rng.Uniform(5)) + "\n";
  }
  auto purchases = ParseCsv(csv);
  if (!purchases.ok()) {
    std::fprintf(stderr, "%s\n", purchases.status().ToString().c_str());
    return 1;
  }
  std::printf("purchases relation: %lld rows %s\n",
              static_cast<long long>(purchases->num_rows()),
              purchases->schema().ToString().c_str());

  // ---- Extract the implicit graph: customers connected through products
  //      they both bought at least 3 of.
  auto copurchase =
      CoOccurrenceGraph(*purchases, "customer", "product", /*min_shared=*/3);
  if (!copurchase.ok()) {
    std::fprintf(stderr, "%s\n", copurchase.status().ToString().c_str());
    return 1;
  }
  auto summary = SummarizeGraph(*copurchase);
  std::printf("\nco-purchase graph: %lld customers, %lld edges, "
              "max degree %lld\n",
              static_cast<long long>(summary->num_vertices),
              static_cast<long long>(summary->num_edges),
              static_cast<long long>(summary->max_out_degree));

  // ---- Analyse it: who are the most central customers? Co-purchase ties
  //      are symmetric, so expand the canonical (src < dst) edges into both
  //      directions before ranking.
  auto symmetric = PlanBuilder::Scan(*copurchase)
                       .Select({"src", "dst"})
                       .Union(PlanBuilder::Scan(*copurchase)
                                  .Project({{"src", Col("dst")},
                                            {"dst", Col("src")}}))
                       .Execute();
  auto vertices = (*DegreeTable(*copurchase)).SelectColumns({0});
  auto ranks = SqlPageRank(vertices, *symmetric, /*iterations=*/8);
  if (!ranks.ok()) {
    std::fprintf(stderr, "%s\n", ranks.status().ToString().c_str());
    return 1;
  }
  auto top = PlanBuilder::Scan(*ranks)
                 .TopN({{"rank", /*ascending=*/false}}, 5)
                 .Execute();
  std::printf("\nmost central customers (by co-purchase PageRank):\n");
  for (int64_t r = 0; r < top->num_rows(); ++r) {
    std::printf("  customer %-5lld rank %.5f\n",
                static_cast<long long>(top->ColumnByName("id")->GetInt64(r)),
                top->ColumnByName("rank")->GetDouble(r));
  }

  // ---- And back to plain SQL: join centrality with spending.
  auto spending =
      PlanBuilder::Scan(*purchases)
          .Aggregate({"customer"}, {{AggOp::kSum, "amount", "spent"}})
          .Rename({"id", "spent"})
          .Join(PlanBuilder::Scan(*ranks).Rename({"rid", "rank"}), {"id"},
                {"rid"})
          .Aggregate({}, {{AggOp::kAvg, "spent", "avg_spent_connected"}})
          .Execute();
  std::printf("\navg spend of graph-connected customers: %.1f\n",
              spending->column(0).GetDouble(0));
  return 0;
}
