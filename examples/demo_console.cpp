/// \file demo_console.cpp
/// \brief The demo GUI's console (§4.1/Figure 3) as a command-line tool.
/// Everything the toolbar offers is a command; the "time monitor" is the
/// timing printed after each one.
///
/// Run interactively:   ./demo_console
/// Or scripted:         echo "load rmat 1000 8000
///                            pagerank 10
///                            top rank 5
///                            triangles
///                            sssp 0
///                            filter family
///                            weakties 5
///                            stats
///                            quit" | ./demo_console
///
/// Commands:
///   load rmat|er|ba N M       generate a graph (deterministic seed)
///   load csv FILE             load an edge list (src,dst[,weight]) CSV
///   filter TYPE               scope analysis to edges of one type
///   unfilter                  clear the scope
///   backend [NAME]            show or pick the execution backend
///   backends                  list backends and their algorithms
///   pagerank [ITERS]          PageRank on the selected backend
///   sssp SRC                  shortest paths from SRC on the backend
///   triangles                 total triangle count on the backend
///   weakties MIN              bridge nodes with >= MIN open pairs
///   overlap MIN               node pairs with >= MIN common neighbours
///   top COLUMN K              show top-K rows of the last result
///   stats                     graph + last-run statistics
///   quit
///
/// Graph algorithms go through the `Engine` facade, so `backend giraph`
/// re-runs the very same commands on the BSP comparator (or `graphdb`,
/// `vertexica`) — the demo's own Figure-2 toggle.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "exec/plan_builder.h"
#include "graphgen/generators.h"
#include "graphgen/metadata.h"
#include "sqlgraph/graph_extraction.h"
#include "sqlgraph/strong_overlap.h"
#include "sqlgraph/weak_ties.h"
#include "storage/csv.h"
#include "vertexica/vertexica.h"

using namespace vertexica;  // NOLINT — example brevity

namespace {

struct Session {
  std::optional<Table> edges;      // full edge table (with metadata)
  std::optional<Table> scope;      // filtered view, if any
  std::optional<Table> last;       // last result, for `top`
  double last_seconds = 0;

  Engine engine;                   // facade over all four backends
  std::string backend = kSqlGraphBackendId;  // the demo's historic default
  bool engine_stale = true;        // edges/scope changed since LoadGraph
  std::string last_stats_json;     // unified stats of the last engine run
  std::vector<int64_t> vertex_ids;  // dense engine id -> original id

  const Table& Current() const { return scope ? *scope : *edges; }
};

/// Re-loads the engine from the current scope. Original vertex ids may be
/// arbitrary and sparse (CSV loads); the engine works on dense per-vertex
/// state, so ids are compacted onto [0, n) with `vertex_ids` recording the
/// mapping back — feeding e.g. id 1e9 straight in would allocate a billion
/// phantom vertices and distort PageRank normalization.
Status SyncEngine(Session* s) {
  if (!s->engine_stale) return Status::OK();
  const Table& edges = s->Current();
  const Column* src = edges.ColumnByName("src");
  const Column* dst = edges.ColumnByName("dst");
  if (src == nullptr || dst == nullptr) {
    return Status::InvalidArgument("edge table lacks src/dst columns");
  }
  const Column* weight = edges.ColumnByName("weight");
  std::map<int64_t, int64_t> dense;  // original id -> dense id, id-ordered
  for (int64_t r = 0; r < edges.num_rows(); ++r) {
    dense.emplace(src->GetInt64(r), 0);
    dense.emplace(dst->GetInt64(r), 0);
  }
  s->vertex_ids.clear();
  s->vertex_ids.reserve(dense.size());
  for (auto& [original, id] : dense) {
    id = static_cast<int64_t>(s->vertex_ids.size());
    s->vertex_ids.push_back(original);
  }
  Graph g;
  g.num_vertices = static_cast<int64_t>(dense.size());
  for (int64_t r = 0; r < edges.num_rows(); ++r) {
    g.AddEdge(dense[src->GetInt64(r)], dense[dst->GetInt64(r)],
              weight != nullptr ? weight->GetNumeric(r) : 1.0);
  }
  VX_RETURN_NOT_OK(s->engine.LoadGraph(std::move(g)));
  s->engine_stale = false;
  return Status::OK();
}

/// Runs one facade request and reports like the SQL commands do. The
/// request carries *original* vertex ids; they are translated to the
/// engine's dense ids here and back when materializing the result.
void RunOnBackend(Session* s, RunRequest request) {
  request.backend = s->backend;
  auto sync = SyncEngine(s);
  if (!sync.ok()) {
    std::printf("error: %s\n", sync.ToString().c_str());
    return;
  }
  if (request.algorithm == kSssp) {
    auto it = std::lower_bound(s->vertex_ids.begin(), s->vertex_ids.end(),
                               request.source);
    if (it == s->vertex_ids.end() || *it != request.source) {
      std::printf("error: vertex %lld not in the current graph\n",
                  static_cast<long long>(request.source));
      return;
    }
    request.source = it - s->vertex_ids.begin();
  }
  auto result = s->engine.Run(request);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  s->last_seconds = result->stats.total_seconds;
  s->last_stats_json = result->stats.ToJson();
  if (result->values.empty()) {
    for (const auto& [name, value] : result->aggregates) {
      std::printf("%s = %.0f ", name.c_str(), value);
    }
    std::printf("on '%s' in %.3f s\n", result->backend.c_str(),
                s->last_seconds);
    return;
  }
  // Like ToTable(), but reporting the session's original vertex ids.
  Table out(Schema({{"id", DataType::kInt64},
                    {result->value_name, DataType::kDouble}}));
  for (size_t v = 0; v < result->values.size(); ++v) {
    VX_CHECK_OK(out.AppendRow(
        {Value(s->vertex_ids[v]), Value(result->values[v])}));
  }
  s->last = std::move(out);
  std::printf("%lld rows on '%s' in %.3f s\n",
              static_cast<long long>(s->last->num_rows()),
              result->backend.c_str(), s->last_seconds);
  std::printf("%s", s->last->ToString(5).c_str());
}

void Report(Session* s, const WallTimer& timer, Result<Table> result) {
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  s->last_seconds = timer.ElapsedSeconds();
  s->last_stats_json.clear();  // this query ran outside the engine
  s->last = std::move(result).MoveValueUnsafe();
  std::printf("%lld rows in %.3f s\n",
              static_cast<long long>(s->last->num_rows()), s->last_seconds);
  std::printf("%s", s->last->ToString(5).c_str());
}

void HandleLoad(Session* s, std::istringstream& args) {
  std::string kind;
  args >> kind;
  if (kind == "csv") {
    std::string path;
    args >> path;
    auto table = ReadCsvFile(path);
    if (!table.ok()) {
      std::printf("error: %s\n", table.status().ToString().c_str());
      return;
    }
    s->edges = std::move(table).MoveValueUnsafe();
  } else {
    int64_t n = 1000;
    int64_t m = 8000;
    args >> n >> m;
    Graph g;
    if (kind == "er") {
      g = GenerateErdosRenyi(n, m, 7);
    } else if (kind == "ba") {
      g = GenerateBarabasiAlbert(n, std::max<int64_t>(1, m / n), 7);
    } else {
      g = GenerateRmat(n, m, 7);
    }
    s->edges = GenerateEdgeMetadata(g, 8);
  }
  s->scope.reset();
  s->engine_stale = true;
  std::printf("loaded %lld edges %s\n",
              static_cast<long long>(s->edges->num_rows()),
              s->edges->schema().ToString().c_str());
}

}  // namespace

int main() {
  Session session;
  std::string line;
  std::printf("vertexica demo console — type 'help' for commands\n");
  while (std::printf("> ") && std::getline(std::cin, line)) {
    std::istringstream args(Trim(line));
    std::string cmd;
    if (!(args >> cmd) || cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      std::printf("commands: load filter unfilter backend backends pagerank "
                  "sssp triangles weakties overlap top degrees stats quit\n");
      continue;
    }
    if (cmd == "load") {
      HandleLoad(&session, args);
      continue;
    }
    if (!session.edges) {
      std::printf("load a graph first (e.g. 'load rmat 1000 8000')\n");
      continue;
    }
    WallTimer timer;
    if (cmd == "filter") {
      std::string type;
      args >> type;
      auto filtered = PlanBuilder::Scan(*session.edges)
                          .Filter(Eq(Col("type"), Lit(type)))
                          .Execute();
      if (filtered.ok()) {
        std::printf("scope: %lld of %lld edges have type '%s'\n",
                    static_cast<long long>(filtered->num_rows()),
                    static_cast<long long>(session.edges->num_rows()),
                    type.c_str());
        session.scope = std::move(filtered).MoveValueUnsafe();
        session.engine_stale = true;
      } else {
        std::printf("error: %s\n", filtered.status().ToString().c_str());
      }
    } else if (cmd == "unfilter") {
      session.scope.reset();
      session.engine_stale = true;
      std::printf("scope cleared\n");
    } else if (cmd == "backend") {
      std::string name;
      if (args >> name) {
        if (session.engine.backend(name) == nullptr) {
          std::printf("unknown backend '%s' — try 'backends'\n", name.c_str());
        } else {
          session.backend = name;
        }
      }
      std::printf("backend: %s\n", session.backend.c_str());
    } else if (cmd == "backends") {
      for (const std::string& id : session.engine.backends()) {
        std::printf("%c %-10s", id == session.backend ? '*' : ' ',
                    id.c_str());
        for (const std::string& algo :
             AlgorithmRegistry::Global()->AlgorithmsFor(id)) {
          std::printf(" %s", algo.c_str());
        }
        std::printf("\n");
      }
    } else if (cmd == "pagerank") {
      RunRequest request;
      request.algorithm = kPageRank;
      // Failed extraction zeroes the target (C++11); keep the default.
      if (!(args >> request.iterations)) request.iterations = 10;
      RunOnBackend(&session, request);
    } else if (cmd == "sssp") {
      RunRequest request;
      request.algorithm = kSssp;
      if (!(args >> request.source)) {
        std::printf("usage: sssp SRC\n");
        continue;
      }
      RunOnBackend(&session, request);
    } else if (cmd == "triangles") {
      RunRequest request;
      request.algorithm = kTriangleCount;
      RunOnBackend(&session, request);
    } else if (cmd == "weakties") {
      int64_t min_pairs = 1;
      args >> min_pairs;
      Report(&session, timer, SqlWeakTies(session.Current(), min_pairs));
    } else if (cmd == "overlap") {
      int64_t min_common = 2;
      args >> min_common;
      Report(&session, timer, SqlStrongOverlap(session.Current(), min_common));
    } else if (cmd == "top") {
      std::string column;
      int64_t k = 5;
      args >> column >> k;
      if (!session.last) {
        std::printf("no previous result\n");
        continue;
      }
      auto top = PlanBuilder::Scan(*session.last)
                     .TopN({{column, /*ascending=*/false}}, k)
                     .Execute();
      if (top.ok()) {
        std::printf("%s", top->ToString(k).c_str());
      } else {
        std::printf("error: %s\n", top.status().ToString().c_str());
      }
    } else if (cmd == "stats") {
      auto summary = SummarizeGraph(session.Current());
      if (summary.ok()) {
        std::printf("vertices: %lld, edges: %lld (scope: %lld of %lld), "
                    "max outdeg: %lld, avg outdeg: %.2f; last query: %.3f s\n",
                    static_cast<long long>(summary->num_vertices),
                    static_cast<long long>(summary->num_edges),
                    static_cast<long long>(session.Current().num_rows()),
                    static_cast<long long>(session.edges->num_rows()),
                    static_cast<long long>(summary->max_out_degree),
                    summary->avg_out_degree, session.last_seconds);
      }
      if (!session.last_stats_json.empty()) {
        std::printf("last run stats: %s\n", session.last_stats_json.c_str());
      }
    } else if (cmd == "degrees") {
      Report(&session, timer, DegreeTable(session.Current()));
    } else {
      std::printf("unknown command '%s' — try 'help'\n", cmd.c_str());
    }
  }
  return 0;
}
