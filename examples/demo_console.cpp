/// \file demo_console.cpp
/// \brief The demo GUI's console (§4.1/Figure 3) as a command-line tool.
/// Everything the toolbar offers is a command; the "time monitor" is the
/// timing printed after each one.
///
/// Run interactively:   ./demo_console
/// Or scripted:         echo "load rmat 1000 8000
///                            pagerank 10
///                            top rank 5
///                            triangles
///                            sssp 0
///                            filter family
///                            weakties 5
///                            stats
///                            quit" | ./demo_console
///
/// Commands:
///   load rmat|er|ba N M       generate a graph (deterministic seed)
///   load csv FILE             load an edge list (src,dst[,weight]) CSV
///   filter TYPE               scope analysis to edges of one type
///   unfilter                  clear the scope
///   pagerank [ITERS]          SQL PageRank over the current scope
///   sssp SRC                  SQL shortest paths from SRC
///   triangles                 total triangle count
///   weakties MIN              bridge nodes with >= MIN open pairs
///   overlap MIN               node pairs with >= MIN common neighbours
///   top COLUMN K              show top-K rows of the last result
///   stats                     graph + last-run statistics
///   quit

#include <cstdio>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "common/string_util.h"
#include "common/timer.h"
#include "exec/plan_builder.h"
#include "graphgen/generators.h"
#include "graphgen/metadata.h"
#include "sqlgraph/graph_extraction.h"
#include "sqlgraph/sql_common.h"
#include "sqlgraph/sql_pagerank.h"
#include "sqlgraph/sql_shortest_paths.h"
#include "sqlgraph/strong_overlap.h"
#include "sqlgraph/triangle_count.h"
#include "sqlgraph/weak_ties.h"
#include "storage/csv.h"

using namespace vertexica;  // NOLINT — example brevity

namespace {

struct Session {
  std::optional<Table> edges;      // full edge table (with metadata)
  std::optional<Table> scope;      // filtered view, if any
  std::optional<Table> last;       // last result, for `top`
  double last_seconds = 0;

  const Table& Current() const { return scope ? *scope : *edges; }
};

void Report(Session* s, const WallTimer& timer, Result<Table> result) {
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  s->last_seconds = timer.ElapsedSeconds();
  s->last = std::move(result).MoveValueUnsafe();
  std::printf("%lld rows in %.3f s\n",
              static_cast<long long>(s->last->num_rows()), s->last_seconds);
  std::printf("%s", s->last->ToString(5).c_str());
}

Result<Table> VerticesOf(const Table& edges) {
  return PlanBuilder::Scan(edges)
      .Select({"src"})
      .Rename({"id"})
      .Union(PlanBuilder::Scan(edges).Select({"dst"}).Rename({"id"}))
      .Distinct()
      .Execute();
}

void HandleLoad(Session* s, std::istringstream& args) {
  std::string kind;
  args >> kind;
  if (kind == "csv") {
    std::string path;
    args >> path;
    auto table = ReadCsvFile(path);
    if (!table.ok()) {
      std::printf("error: %s\n", table.status().ToString().c_str());
      return;
    }
    s->edges = std::move(table).MoveValueUnsafe();
  } else {
    int64_t n = 1000;
    int64_t m = 8000;
    args >> n >> m;
    Graph g;
    if (kind == "er") {
      g = GenerateErdosRenyi(n, m, 7);
    } else if (kind == "ba") {
      g = GenerateBarabasiAlbert(n, std::max<int64_t>(1, m / n), 7);
    } else {
      g = GenerateRmat(n, m, 7);
    }
    s->edges = GenerateEdgeMetadata(g, 8);
  }
  s->scope.reset();
  std::printf("loaded %lld edges %s\n",
              static_cast<long long>(s->edges->num_rows()),
              s->edges->schema().ToString().c_str());
}

}  // namespace

int main() {
  Session session;
  std::string line;
  std::printf("vertexica demo console — type 'help' for commands\n");
  while (std::printf("> ") && std::getline(std::cin, line)) {
    std::istringstream args(Trim(line));
    std::string cmd;
    if (!(args >> cmd) || cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      std::printf("commands: load filter unfilter pagerank sssp triangles "
                  "weakties overlap top degrees stats quit\n");
      continue;
    }
    if (cmd == "load") {
      HandleLoad(&session, args);
      continue;
    }
    if (!session.edges) {
      std::printf("load a graph first (e.g. 'load rmat 1000 8000')\n");
      continue;
    }
    WallTimer timer;
    if (cmd == "filter") {
      std::string type;
      args >> type;
      auto filtered = PlanBuilder::Scan(*session.edges)
                          .Filter(Eq(Col("type"), Lit(type)))
                          .Execute();
      if (filtered.ok()) {
        std::printf("scope: %lld of %lld edges have type '%s'\n",
                    static_cast<long long>(filtered->num_rows()),
                    static_cast<long long>(session.edges->num_rows()),
                    type.c_str());
        session.scope = std::move(filtered).MoveValueUnsafe();
      } else {
        std::printf("error: %s\n", filtered.status().ToString().c_str());
      }
    } else if (cmd == "unfilter") {
      session.scope.reset();
      std::printf("scope cleared\n");
    } else if (cmd == "pagerank") {
      int iters = 10;
      args >> iters;
      auto vertices = VerticesOf(session.Current());
      if (vertices.ok()) {
        Report(&session, timer,
               SqlPageRank(*vertices, session.Current(), iters));
      }
    } else if (cmd == "sssp") {
      int64_t src = 0;
      args >> src;
      auto vertices = VerticesOf(session.Current());
      if (vertices.ok()) {
        Report(&session, timer,
               SqlShortestPaths(*vertices, session.Current(), src));
      }
    } else if (cmd == "triangles") {
      auto count = SqlTriangleCount(session.Current());
      if (count.ok()) {
        std::printf("%lld triangles in %.3f s\n",
                    static_cast<long long>(*count), timer.ElapsedSeconds());
      } else {
        std::printf("error: %s\n", count.status().ToString().c_str());
      }
    } else if (cmd == "weakties") {
      int64_t min_pairs = 1;
      args >> min_pairs;
      Report(&session, timer, SqlWeakTies(session.Current(), min_pairs));
    } else if (cmd == "overlap") {
      int64_t min_common = 2;
      args >> min_common;
      Report(&session, timer, SqlStrongOverlap(session.Current(), min_common));
    } else if (cmd == "top") {
      std::string column;
      int64_t k = 5;
      args >> column >> k;
      if (!session.last) {
        std::printf("no previous result\n");
        continue;
      }
      auto top = PlanBuilder::Scan(*session.last)
                     .TopN({{column, /*ascending=*/false}}, k)
                     .Execute();
      if (top.ok()) {
        std::printf("%s", top->ToString(k).c_str());
      } else {
        std::printf("error: %s\n", top.status().ToString().c_str());
      }
    } else if (cmd == "stats") {
      auto summary = SummarizeGraph(session.Current());
      if (summary.ok()) {
        std::printf("vertices: %lld, edges: %lld (scope: %lld of %lld), "
                    "max outdeg: %lld, avg outdeg: %.2f; last query: %.3f s\n",
                    static_cast<long long>(summary->num_vertices),
                    static_cast<long long>(summary->num_edges),
                    static_cast<long long>(session.Current().num_rows()),
                    static_cast<long long>(session.edges->num_rows()),
                    static_cast<long long>(summary->max_out_degree),
                    summary->avg_out_degree, session.last_seconds);
      }
    } else if (cmd == "degrees") {
      Report(&session, timer, DegreeTable(session.Current()));
    } else {
      std::printf("unknown command '%s' — try 'help'\n", cmd.c_str());
    }
  }
  return 0;
}
