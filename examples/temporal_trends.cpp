/// \file temporal_trends.cpp
/// \brief Dynamic and time-series analysis (§3.3, §4.2.3): evolve a graph
/// over five "years" of mutations, track one node's PageRank trajectory,
/// ask which nodes came closer, and leave a continuous analysis running
/// across the mutations.
///
/// Run: ./temporal_trends

#include <cstdio>

#include "common/random.h"
#include "graphgen/generators.h"
#include "sqlgraph/sql_common.h"
#include "sqlgraph/sql_pagerank.h"
#include "temporal/continuous.h"
#include "temporal/versioned_graph.h"

using namespace vertexica;  // NOLINT — example brevity

int main() {
  constexpr int64_t kPeople = 1200;
  constexpr int64_t kRisingStar = 17;

  Catalog catalog;
  VersionedGraphStore store(&catalog);
  Graph g = GenerateRmat(kPeople, 8000, /*seed=*/31);
  if (auto v = store.CommitVersion(MakeEdgeListTable(g)); !v.ok()) {
    std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
    return 1;
  }

  // A continuous analysis observes every version: max PageRank.
  ContinuousRunner monitor(&store, "max pagerank",
                           [](const Table& edges) -> Result<Table> {
                             VX_ASSIGN_OR_RETURN(Graph graph,
                                                 GraphFromEdgeTable(edges));
                             graph.num_vertices = kPeople;
                             VX_ASSIGN_OR_RETURN(auto ranks,
                                                 SqlPageRank(graph, 6));
                             double best = 0;
                             for (double r : ranks) best = std::max(best, r);
                             Table t(Schema({{"max_rank",
                                              DataType::kDouble}}));
                             VX_RETURN_NOT_OK(t.AppendRow({Value(best)}));
                             return t;
                           });

  // Five years of growth: every year the rising star gains followers.
  Rng rng(32);
  for (int year = 1; year <= 4; ++year) {
    Table growth(Schema({{"src", DataType::kInt64},
                         {"dst", DataType::kInt64},
                         {"weight", DataType::kDouble}}));
    for (int e = 0; e < 120 * year; ++e) {
      VX_CHECK_OK(growth.AppendRow(
          {Value(static_cast<int64_t>(rng.Uniform(kPeople))),
           Value(kRisingStar), Value(1.0)}));
    }
    VX_CHECK_OK(store.AddEdges(growth).status());
  }
  std::printf("committed %d versions (years)\n", store.latest_version());

  // Time-series: the star's PageRank per year (§4.2.3 "how the PageRank of
  // a given node has changed in the last 5 years").
  std::printf("\nPageRank trajectory of person %lld:\n",
              static_cast<long long>(kRisingStar));
  for (int v = 1; v <= store.latest_version(); ++v) {
    Table edges = *store.EdgesAt(v);
    Graph graph = *GraphFromEdgeTable(edges);
    graph.num_vertices = kPeople;
    auto ranks = SqlPageRank(graph, 6);
    std::printf("  year %d: %.6f\n", v, (*ranks)[kRisingStar]);
  }

  // Biggest movers between the first and the last year.
  auto delta = PageRankDelta(store, 1, store.latest_version(), 6);
  std::printf("\nbiggest PageRank movers (year 1 -> year %d):\n",
              store.latest_version());
  for (int64_t r = 0; r < std::min<int64_t>(3, delta->num_rows()); ++r) {
    std::printf("  person %-6lld %+.6f\n",
                static_cast<long long>(delta->ColumnByName("id")->GetInt64(r)),
                delta->ColumnByName("delta")->GetDouble(r));
  }

  // Who came closer to person 0 in the last year? (§4.2.3)
  auto closer = ShortestPathDecrease(store, store.latest_version() - 1,
                                     store.latest_version(), /*source=*/0);
  std::printf("\n%lld people moved closer to person 0 in the last year\n",
              static_cast<long long>(closer->num_rows()));

  // Drain the continuous analysis and show its time monitor.
  auto ticks = monitor.Poll();
  std::printf("\ncontinuous 'max pagerank' analysis:\n");
  for (const auto& tick : *ticks) {
    std::printf("  version %d: max rank %.6f (%.3f s)\n", tick.version,
                tick.result.column(0).GetDouble(0), tick.seconds);
  }
  return 0;
}
