/// \file quickstart.cpp
/// \brief Vertexica in five minutes:
///   1. generate (or load) a graph and hand it to the `Engine` facade,
///   2. run a built-in algorithm (PageRank) — and the *same request* on
///      every other backend, one loop, for a cross-system comparison,
///   3. write your own vertex program (degree counting) and run it,
///   4. mix in plain SQL over the result — it is still just a table.
///
/// Run: ./quickstart

#include <cstdio>

#include "exec/plan_builder.h"
#include "graphgen/generators.h"
#include "vertexica/vertexica.h"

using namespace vertexica;  // NOLINT — example brevity

/// A user-defined vertex program: every vertex counts its in-degree by
/// having each neighbour send "1" in superstep 0 and summing in superstep 1.
class InDegreeProgram : public VertexProgram {
 public:
  int value_arity() const override { return 1; }
  int message_arity() const override { return 1; }

  void InitValue(int64_t, int64_t, double* value) const override {
    value[0] = 0.0;
  }

  void Compute(VertexContext* ctx) override {
    if (ctx->superstep() == 0) {
      ctx->SendMessageToAllNeighbors(1.0);
    } else {
      double in_degree = 0;
      for (int64_t m = 0; m < ctx->num_messages(); ++m) {
        in_degree += ctx->GetMessage(m)[0];
      }
      ctx->ModifyVertexValue(in_degree);
    }
    if (ctx->superstep() >= 1) ctx->VoteToHalt();
  }

  MessageCombiner combiner() const override { return MessageCombiner::kSum; }
};

int main() {
  // 1. A scale-free social graph: 2,000 people, ~16,000 follows — loaded
  //    once into the facade; each backend prepares lazily on first use.
  Graph graph = GenerateRmat(2000, 16000, /*seed=*/7);
  std::printf("graph: %lld vertices, %lld edges\n",
              static_cast<long long>(graph.num_vertices),
              static_cast<long long>(graph.num_edges()));

  Engine engine;
  if (auto st = engine.LoadGraph(graph); !st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 2. Built-in PageRank on the default backend (the relational engine).
  RunRequest request;
  request.algorithm = "pagerank";
  request.iterations = 10;
  auto ranks = engine.Run(request);
  if (!ranks.ok()) {
    std::fprintf(stderr, "PageRank failed: %s\n",
                 ranks.status().ToString().c_str());
    return 1;
  }
  std::printf("PageRank on '%s': %d supersteps, %lld messages, %.3f s\n",
              ranks->backend.c_str(), ranks->stats.num_supersteps(),
              static_cast<long long>(ranks->stats.total_messages),
              ranks->stats.total_seconds);

  int64_t best = 0;
  for (int64_t v = 1; v < graph.num_vertices; ++v) {
    if (ranks->values[static_cast<size_t>(v)] >
        ranks->values[static_cast<size_t>(best)]) {
      best = v;
    }
  }
  std::printf("most influential vertex: %lld (rank %.6f)\n",
              static_cast<long long>(best),
              ranks->values[static_cast<size_t>(best)]);

  //    The same request runs on every backend — one loop compares all four
  //    engines. (Raw compute only: the paper-calibrated modeled costs —
  //    Giraph job launch, graph-database record I/O — are applied by the
  //    figure benches, bench_fig2a/bench_fig2b.)
  for (const std::string& backend : engine.backends()) {
    request.backend = backend;
    auto result = engine.Run(request);
    if (result.ok()) {
      std::printf("  %-10s %.3f s\n", backend.c_str(),
                  result->stats.total_seconds);
    } else {
      std::printf("  %-10s failed: %s\n", backend.c_str(),
                  result.status().ToString().c_str());
    }
  }

  // 3. Your own vertex program runs exactly the same way underneath: the
  //    classic per-program entry point still exists for custom programs.
  InDegreeProgram in_degree;
  Catalog catalog;
  if (auto st = RunVertexProgram(&catalog, graph, &in_degree); !st.ok()) {
    std::fprintf(stderr, "InDegree failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto degrees = ReadVertexValues(catalog, {});
  std::printf("in-degree of the influencer: %.0f\n",
              (*degrees)[static_cast<size_t>(best)]);

  // 4. The result is still just a table — plain SQL works on it. Top-3
  //    vertices by rank:
  Table rank_table = ranks->ToTable();
  auto top = PlanBuilder::Scan(rank_table)
                 .TopN({{"rank", /*ascending=*/false}}, 3)
                 .Execute();
  if (top.ok()) {
    std::printf("top-3 by rank via SQL over the result table:\n%s",
                top->ToString(3).c_str());
  }
  return 0;
}
