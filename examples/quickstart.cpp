/// \file quickstart.cpp
/// \brief Vertexica in five minutes:
///   1. generate (or load) a graph,
///   2. run a built-in vertex-centric algorithm (PageRank) on the
///      relational engine,
///   3. write your own vertex program (degree counting) and run it,
///   4. mix in plain SQL over the same tables.
///
/// Run: ./quickstart

#include <cstdio>

#include "algorithms/pagerank.h"
#include "exec/plan_builder.h"
#include "graphgen/generators.h"
#include "vertexica/coordinator.h"

using namespace vertexica;  // NOLINT — example brevity

/// A user-defined vertex program: every vertex counts its in-degree by
/// having each neighbour send "1" in superstep 0 and summing in superstep 1.
class InDegreeProgram : public VertexProgram {
 public:
  int value_arity() const override { return 1; }
  int message_arity() const override { return 1; }

  void InitValue(int64_t, int64_t, double* value) const override {
    value[0] = 0.0;
  }

  void Compute(VertexContext* ctx) override {
    if (ctx->superstep() == 0) {
      ctx->SendMessageToAllNeighbors(1.0);
    } else {
      double in_degree = 0;
      for (int64_t m = 0; m < ctx->num_messages(); ++m) {
        in_degree += ctx->GetMessage(m)[0];
      }
      ctx->ModifyVertexValue(in_degree);
    }
    if (ctx->superstep() >= 1) ctx->VoteToHalt();
  }

  MessageCombiner combiner() const override { return MessageCombiner::kSum; }
};

int main() {
  // 1. A scale-free social graph: 2,000 people, ~16,000 follows.
  Graph graph = GenerateRmat(2000, 16000, /*seed=*/7);
  std::printf("graph: %lld vertices, %lld edges\n",
              static_cast<long long>(graph.num_vertices),
              static_cast<long long>(graph.num_edges()));

  // 2. Built-in PageRank through the vertex-centric interface. The catalog
  //    is the "database": vertex/edge/message tables live in it.
  Catalog catalog;
  RunStats stats;
  auto ranks = RunPageRank(&catalog, graph, /*iterations=*/10,
                           /*damping=*/0.85, VertexicaOptions{}, &stats);
  if (!ranks.ok()) {
    std::fprintf(stderr, "PageRank failed: %s\n",
                 ranks.status().ToString().c_str());
    return 1;
  }
  std::printf("PageRank: %d supersteps, %lld messages, %.3f s\n",
              stats.num_supersteps(),
              static_cast<long long>(stats.total_messages),
              stats.total_seconds);

  int64_t best = 0;
  for (int64_t v = 1; v < graph.num_vertices; ++v) {
    if ((*ranks)[static_cast<size_t>(v)] > (*ranks)[static_cast<size_t>(best)]) {
      best = v;
    }
  }
  std::printf("most influential vertex: %lld (rank %.6f)\n",
              static_cast<long long>(best),
              (*ranks)[static_cast<size_t>(best)]);

  // 3. Your own vertex program runs exactly the same way.
  InDegreeProgram in_degree;
  Catalog catalog2;
  if (auto st = RunVertexProgram(&catalog2, graph, &in_degree); !st.ok()) {
    std::fprintf(stderr, "InDegree failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto degrees = ReadVertexValues(catalog2, {});
  std::printf("in-degree of the influencer: %.0f\n",
              (*degrees)[static_cast<size_t>(best)]);

  // 4. The graph is still just tables — plain SQL works on it. Count
  //    vertices that halted with at least one out-edge:
  auto vertex_table = catalog.GetTable("vertex");
  auto edge_table = catalog.GetTable("edge");
  auto heavy = PlanBuilder::Scan(*edge_table)
                   .Aggregate({"src"}, {{AggOp::kCountStar, "", "outdeg"}})
                   .Filter(Ge(Col("outdeg"), Lit(int64_t{20})))
                   .Execute();
  std::printf("vertices with out-degree >= 20: %lld\n",
              static_cast<long long>(heavy->num_rows()));
  return 0;
}
