/// \file crash_recovery_demo.cpp
/// \brief Crash-recovery driver for the checkpoint subsystem, built to be
/// killed. scripts/crash_recovery_smoke.sh runs it three ways:
///
///   crash_recovery_demo full
///       Uninterrupted PageRank; prints the final vertex values with full
///       precision (%.17g) — the golden output.
///
///   crash_recovery_demo run <checkpoint-dir>
///       The same run, checkpointing every superstep into <dir>. With a
///       crash fault armed (VERTEXICA_FAULTS="checkpoint...=N:crash") the
///       process _Exits with code 113 mid-checkpoint; the smoke script
///       also SIGKILLs an unarmed instance of this mode.
///
///   crash_recovery_demo verify <checkpoint-dir>
///       Restores the last good generation from <dir>, resumes the run to
///       completion, and prints the values in the same format. The script
///       diffs this against the golden output: recovery must be
///       bit-identical, not merely converged.
///
/// See docs/DEVELOPING.md, "Fault injection & recovery".

#include <cstdio>
#include <cstring>
#include <string>

#include "algorithms/pagerank.h"
#include "catalog/catalog_io.h"
#include "graphgen/generators.h"
#include "vertexica/vertexica.h"

using namespace vertexica;  // NOLINT — example brevity

namespace {

constexpr int64_t kVertices = 200;
constexpr int64_t kEdges = 1200;
constexpr uint64_t kSeed = 19;
constexpr int kIterations = 12;

Graph DemoGraph() { return GenerateRmat(kVertices, kEdges, kSeed); }

void PrintValues(const Catalog& catalog) {
  auto values = ReadVertexValues(catalog, {});
  if (!values.ok()) {
    std::fprintf(stderr, "read values failed: %s\n",
                 values.status().ToString().c_str());
    std::exit(1);
  }
  for (size_t v = 0; v < values->size(); ++v) {
    // %.17g round-trips every double bit pattern — the smoke script's
    // diff is an exact bit-identity check, not a tolerance check.
    std::printf("%zu %.17g\n", v, (*values)[v]);
  }
}

int RunFull() {
  Graph g = DemoGraph();
  Catalog catalog;
  PageRankProgram program(kIterations);
  if (auto st = LoadGraphTables(&catalog, g, program); !st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }
  Coordinator coordinator(&catalog, &program, {});
  if (auto st = coordinator.Run(); !st.ok()) {
    std::fprintf(stderr, "run failed: %s\n", st.ToString().c_str());
    return 1;
  }
  PrintValues(catalog);
  return 0;
}

int RunCheckpointed(const std::string& dir) {
  Graph g = DemoGraph();
  Catalog catalog;
  PageRankProgram program(kIterations);
  if (auto st = LoadGraphTables(&catalog, g, program); !st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }
  VertexicaOptions opts;
  opts.checkpoint_every = 1;
  opts.checkpoint_dir = dir;
  Coordinator coordinator(&catalog, &program, opts);
  // With a crash fault armed this call never returns — the process
  // _Exits(113) at the armed checkpoint site, mid-save.
  if (auto st = coordinator.Run(); !st.ok()) {
    std::fprintf(stderr, "run failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("checkpointed run complete\n");
  return 0;
}

int Verify(const std::string& dir) {
  Catalog catalog;
  if (auto st = LoadCatalog(dir, &catalog); !st.ok()) {
    std::fprintf(stderr, "restore failed: %s\n", st.ToString().c_str());
    return 1;
  }
  PageRankProgram program(kIterations);
  VertexicaOptions opts;
  opts.resume_from_checkpoint = true;
  Coordinator coordinator(&catalog, &program, opts);
  if (auto st = coordinator.Run(); !st.ok()) {
    std::fprintf(stderr, "resume failed: %s\n", st.ToString().c_str());
    return 1;
  }
  PrintValues(catalog);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "full") == 0) return RunFull();
  if (argc >= 3 && std::strcmp(argv[1], "run") == 0) {
    return RunCheckpointed(argv[2]);
  }
  if (argc >= 3 && std::strcmp(argv[1], "verify") == 0) {
    return Verify(argv[2]);
  }
  std::fprintf(stderr,
               "usage: %s full | run <checkpoint-dir> | verify "
               "<checkpoint-dir>\n",
               argv[0]);
  return 2;
}
