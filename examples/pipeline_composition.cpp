/// \file pipeline_composition.cpp
/// \brief The GUI Dataflow panel (§4.1/Figure 3) as code: compose the
/// toolbar's operators — Selection → TriangleCounting → join → PageRank →
/// Aggregation — into one end-to-end processing pipeline, with the
/// time-monitor output the demo plots.
///
/// Run: ./pipeline_composition

#include <cstdio>

#include "graphgen/generators.h"
#include "graphgen/metadata.h"
#include "pipeline/dataflow.h"
#include "pipeline/nodes.h"

using namespace vertexica;  // NOLINT — example brevity

int main() {
  Graph g = GenerateRmat(2500, 20000, /*seed=*/41);
  Table edges = GenerateEdgeMetadata(g, /*seed=*/42);

  // The Figure-3 dataflow: Selection -> {TriangleCounting, PageRank} ->
  // Join -> Aggregate, plus a histogram branch.
  Pipeline p;
  const int source = p.AddNode(MakeSourceNode("raw edges", edges));

  // Scope of analysis: recent, non-classmate relationships.
  const int scoped = p.AddNode(
      MakeSelectionNode(Ne(Col("type"), Lit(std::string("classmate")))),
      {source});

  const int triangles = p.AddNode(MakeTriangleCountingNode(), {scoped});
  const int pagerank = p.AddNode(MakePageRankNode(/*iterations=*/8), {scoped});

  // Combine both analyses per node.
  const int combined = p.AddNode(MakeJoinNode({"id"}, {"id"}),
                                 {pagerank, triangles});

  // Post-process relationally: who is both embedded (triangles) and
  // important (rank)?
  const int insight = p.AddNode(
      MakeSelectionNode(And(Ge(Col("triangles"), Lit(int64_t{3})),
                            Gt(Col("rank"), Lit(1.0 / 2500.0)))),
      {combined});
  const int summary = p.AddNode(
      MakeAggregationNode({}, {{AggOp::kCountStar, "", "nodes"},
                               {AggOp::kMax, "rank", "max_rank"},
                               {AggOp::kAvg, "triangles", "avg_triangles"}}),
      {insight});

  // A second output: the rank distribution histogram (§4.2.2).
  const int histogram = p.AddNode(MakeHistogramNode("rank", 10), {pagerank});

  auto summary_out = p.Run(summary);
  if (!summary_out.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 summary_out.status().ToString().c_str());
    return 1;
  }
  auto hist_out = p.Run(histogram);

  std::printf("== console ==\n");
  std::printf("embedded & important nodes: %lld (max rank %.6f, avg "
              "triangles %.1f)\n",
              static_cast<long long>(
                  summary_out->ColumnByName("nodes")->GetInt64(0)),
              summary_out->ColumnByName("max_rank")->GetDouble(0),
              summary_out->ColumnByName("avg_triangles")->GetDouble(0));

  std::printf("\nrank histogram:\n");
  for (int64_t r = 0; r < hist_out->num_rows(); ++r) {
    const auto count = hist_out->ColumnByName("count")->GetInt64(r);
    std::printf("  [%8.6f, %8.6f) %6lld ",
                hist_out->ColumnByName("lo")->GetDouble(r),
                hist_out->ColumnByName("hi")->GetDouble(r),
                static_cast<long long>(count));
    for (int64_t star = 0; star < std::min<int64_t>(60, count / 5); ++star) {
      std::printf("*");
    }
    std::printf("\n");
  }

  std::printf("\n== time monitor ==\n");
  for (const auto& t : p.timings()) {
    std::printf("  %-32s %.3f s\n", t.name.c_str(), t.seconds);
  }
  return 0;
}
