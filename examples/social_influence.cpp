/// \file social_influence.cpp
/// \brief The §3.2 hybrid-analysis scenario: on a social network with rich
/// metadata, find "sufficiently important nodes which act as bridges" —
/// weak ties joined with PageRank — and run SSSP from the most clustered
/// member. Demonstrates the SQL graph algorithms plus relational
/// composition that vertex-centric-only systems cannot express easily.
///
/// Run: ./social_influence

#include <cstdio>
#include <limits>

#include "exec/plan_builder.h"
#include "graphgen/generators.h"
#include "graphgen/metadata.h"
#include "pipeline/dataflow.h"
#include "pipeline/nodes.h"
#include "sqlgraph/clustering_coefficient.h"
#include "sqlgraph/sql_common.h"
#include "sqlgraph/sql_shortest_paths.h"
#include "sqlgraph/strong_overlap.h"

using namespace vertexica;  // NOLINT — example brevity

int main() {
  // A social network with the paper's §4 metadata: edge types
  // friend/family/classmate, creation timestamps, weights.
  Graph graph = GenerateRmat(3000, 24000, /*seed=*/11);
  Table edges = GenerateEdgeMetadata(graph, /*seed=*/12);
  std::printf("social graph: %lld people, %lld relationships\n",
              static_cast<long long>(graph.num_vertices),
              static_cast<long long>(edges.num_rows()));

  // ---- Important bridges: weak ties ⋈ PageRank, both thresholds. -------
  Pipeline pipeline;
  const int src = pipeline.AddNode(MakeSourceNode("edges", edges));
  const int ties = pipeline.AddNode(MakeWeakTiesNode(/*min_pairs=*/25), {src});
  const int pr = pipeline.AddNode(MakePageRankNode(/*iterations=*/8), {src});
  const int joined = pipeline.AddNode(MakeJoinNode({"id"}, {"id"}),
                                      {ties, pr});
  const int important = pipeline.AddNode(
      MakeSelectionNode(Gt(Col("rank"), Lit(1.5 / 3000.0))), {joined});
  auto bridges = pipeline.Run(important);
  if (!bridges.ok()) {
    std::fprintf(stderr, "bridge query failed: %s\n",
                 bridges.status().ToString().c_str());
    return 1;
  }
  std::printf("\nimportant bridges (open pairs >= 25 AND rank > 1.5/N): %lld\n",
              static_cast<long long>(bridges->num_rows()));
  for (int64_t r = 0; r < std::min<int64_t>(5, bridges->num_rows()); ++r) {
    std::printf("  person %-6lld bridges %-5lld pairs, rank %.6f\n",
                static_cast<long long>(bridges->ColumnByName("id")->GetInt64(r)),
                static_cast<long long>(
                    bridges->ColumnByName("open_pairs")->GetInt64(r)),
                bridges->ColumnByName("rank")->GetDouble(r));
  }
  for (const auto& t : pipeline.timings()) {
    std::printf("  [time monitor] %-28s %.3f s\n", t.name.c_str(), t.seconds);
  }

  // ---- Strong overlap among family members only. -----------------------
  auto family = PlanBuilder::Scan(edges)
                    .Filter(Eq(Col("type"), Lit(std::string("family"))))
                    .Execute();
  auto overlap = SqlStrongOverlap(*family, /*min_common=*/3);
  std::printf("\nfamily pairs sharing >= 3 relatives: %lld\n",
              static_cast<long long>(overlap->num_rows()));

  // ---- SSSP from the most clustered person (§3.2's second example). ----
  auto seed = SqlMaxClusteringVertex(edges);
  auto dist = SqlShortestPaths(graph, *seed);
  int64_t reachable = 0;
  for (double d : *dist) {
    if (d < std::numeric_limits<double>::infinity()) ++reachable;
  }
  std::printf("\nmost clustered person: %lld; reaches %lld of %lld people\n",
              static_cast<long long>(*seed),
              static_cast<long long>(reachable),
              static_cast<long long>(graph.num_vertices));
  return 0;
}
