/// \file recommender.cpp
/// \brief Collaborative filtering (§3.1 (iv)): train latent factors over a
/// bipartite user × item rating graph with the vertex-centric engine, then
/// recommend unseen items to a user.
///
/// Run: ./recommender

#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "algorithms/collaborative_filtering.h"
#include "graphgen/generators.h"

using namespace vertexica;  // NOLINT — example brevity

int main() {
  constexpr int64_t kUsers = 500;
  constexpr int64_t kItems = 120;
  constexpr int64_t kRatings = 8000;

  // Users are vertices [0, kUsers); items are [kUsers, kUsers + kItems).
  Graph ratings = GenerateBipartite(kUsers, kItems, kRatings, /*seed=*/21);
  std::printf("ratings: %lld users x %lld items, %lld ratings (1-5 stars)\n",
              static_cast<long long>(kUsers), static_cast<long long>(kItems),
              static_cast<long long>(ratings.num_edges()));

  Catalog catalog;
  RunStats stats;
  auto model = RunCollaborativeFiltering(&catalog, ratings,
                                         /*num_factors=*/8,
                                         /*max_iterations=*/20,
                                         VertexicaOptions{}, &stats);
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  const double mse =
      model->squared_error / (2.0 * static_cast<double>(ratings.num_edges()));
  std::printf("trained in %d supersteps (%.3f s); training MSE %.3f\n",
              stats.num_supersteps(), stats.total_seconds, mse);

  // Recommend for user 0: highest predicted rating among unrated items.
  const int64_t user = 0;
  std::set<int64_t> rated;
  for (int64_t e = 0; e < ratings.num_edges(); ++e) {
    if (ratings.src[static_cast<size_t>(e)] == user) {
      rated.insert(ratings.dst[static_cast<size_t>(e)]);
    }
  }
  std::vector<std::pair<double, int64_t>> candidates;
  for (int64_t item = kUsers; item < kUsers + kItems; ++item) {
    if (rated.count(item) > 0) continue;
    candidates.emplace_back(model->Predict(user, item), item);
  }
  std::sort(candidates.rbegin(), candidates.rend());
  std::printf("\nuser %lld rated %zu items; top-5 recommendations:\n",
              static_cast<long long>(user), rated.size());
  for (size_t i = 0; i < std::min<size_t>(5, candidates.size()); ++i) {
    std::printf("  item %-5lld predicted %.2f stars\n",
                static_cast<long long>(candidates[i].second - kUsers),
                candidates[i].first);
  }
  return 0;
}
